(** The [liblang] command-line tool.

    {v
    liblang run FILE ...       run #lang programs (later files may require
                               modules declared by earlier ones)
    liblang expand FILE        print a module's fully-expanded core forms
    liblang eval [-l LANG] E   evaluate one expression
    liblang repl [-l LANG]     interactive read-eval-print loop
    liblang langs              list the registered languages
    v} *)

open Liblang_core.Core

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let module_name_of path = Filename.remove_extension (Filename.basename path)

let report_error = function
  | Value.Scheme_error m -> Printf.eprintf "error: %s\n" m
  | Expander.Expand_error (m, stx) ->
      Printf.eprintf "syntax error: %s\n  in: %s\n  at: %s\n" m (Stx.to_string stx)
        (Srcloc.to_string stx.Stx.loc)
  | Compile.Compile_error (m, stx) ->
      Printf.eprintf "compile error: %s\n  in: %s\n" m (Stx.to_string stx)
  | Modsys.Module_error m -> Printf.eprintf "module error: %s\n" m
  | Liblang_stx.Binding.Ambiguous id ->
      Printf.eprintf "ambiguous identifier: %s\n" (Stx.to_string id)
  | e -> Printf.eprintf "error: %s\n" (Printexc.to_string e)

let catching f = try f () with e -> report_error e; exit 1

let cmd_run paths =
  List.iter
    (fun path ->
      catching (fun () ->
          let m = Modsys.declare ~name:(module_name_of path) (read_file path) in
          Modsys.instantiate m))
    paths

let cmd_expand path =
  catching (fun () ->
      let forms = Modsys.expand_source ~name:(module_name_of path) (read_file path) in
      List.iter (fun f -> print_endline (Stx.to_string f)) forms)

let cmd_eval lang expr =
  catching (fun () -> print_endline (Value.write_string (eval_expr ~lang expr)))

let cmd_langs () =
  (* every builtin language *)
  List.iter print_endline [ "racket"; "typed/racket (aliases: typed, simple-type)"; "count"; "lazy"; "limited" ]

let cmd_repl lang =
  Printf.printf "liblang repl (#lang %s); ctrl-d to exit\n" lang;
  let buf = Buffer.create 256 in
  let balanced s =
    let depth = ref 0 and in_str = ref false in
    String.iteri
      (fun i c ->
        if !in_str then (if c = '"' && (i = 0 || s.[i - 1] <> '\\') then in_str := false)
        else
          match c with
          | '"' -> in_str := true
          | '(' | '[' -> incr depth
          | ')' | ']' -> decr depth
          | _ -> ())
      s;
    !depth <= 0 && not !in_str
  in
  try
    while true do
      if Buffer.length buf = 0 then print_string "> " else print_string "  ";
      flush stdout;
      let line = input_line stdin in
      Buffer.add_string buf line;
      Buffer.add_char buf '\n';
      let text = Buffer.contents buf in
      if String.trim text <> "" && balanced text then begin
        Buffer.clear buf;
        try
          let v = eval_expr ~lang text in
          if v <> Value.Void then print_endline (Value.write_string v)
        with e -> report_error e
      end
    done
  with End_of_file -> print_newline ()

let usage () =
  prerr_endline "usage: liblang run FILE... | expand FILE | eval [-l LANG] EXPR | repl [-l LANG] | langs";
  exit 2

let () =
  init ();
  let args = Array.to_list Sys.argv in
  match args with
  | _ :: "run" :: (_ :: _ as paths) -> cmd_run paths
  | [ _; "expand"; path ] -> cmd_expand path
  | [ _; "eval"; "-l"; lang; expr ] -> cmd_eval lang expr
  | [ _; "eval"; expr ] -> cmd_eval "racket" expr
  | [ _; "repl"; "-l"; lang ] -> cmd_repl lang
  | [ _; "repl" ] -> cmd_repl "racket"
  | [ _; "langs" ] -> cmd_langs ()
  | _ -> usage ()
