(** Tests for the additional languages-as-libraries: count, lazy, limited —
    and the language-registration machinery itself. *)

open Liblang_core.Core
open Test_util

let count_lang =
  [
    t_run "paper's exact example (§2.3)"
      "#lang count\n(printf \"*~a\" (+ 1 2))\n(printf \"*~a\" (- 4 3))"
      "Found 2 expressions.*3*1";
    t_run "count of zero forms" "#lang count\n" "Found 0 expressions.";
    t_run "count sees source-level forms, not expansions"
      "#lang count\n(define-syntax-rule (twice e) (begin e e))\n(twice (display \"x\"))"
      "Found 2 expressions.xx";
    t_run "count language still has full racket"
      "#lang count\n(display (map add1 '(1 2)))" "Found 1 expressions.(2 3)";
  ]

let lazy_lang =
  [
    t_run "unused argument is never evaluated"
      "#lang lazy\n(define (k x) 5)\n(display (k (error \"boom\")))" "5";
    t_run "used arguments are evaluated" "#lang lazy\n(define (sq x) (* x x))\n(display (sq 4))"
      "16";
    t_run "call-by-need memoizes"
      "#lang lazy\n(define (both x) (+ x x))\n(display (both (begin (display \"!\") 21)))" "!42";
    t_run "if forces its condition"
      "#lang lazy\n(define (choose c) (if c 'yes 'no))\n(display (choose (> 2 1)))" "yes";
    t_run "if does not force the untaken branch"
      "#lang lazy\n(define (choose c a b) (if c a b))\n(display (choose #t 'ok (error \"untaken\")))"
      "ok";
    t_run "explicit force with !"
      "#lang lazy\n(define (wrap x) x)\n(define p (wrap (begin (display \"e\") 3)))\n(display (! p))"
      "e3";
    t_run "laziness cuts off divergence"
      "#lang lazy\n(define (forever) (forever))\n(define (pick a b) a)\n(display (pick 'done (forever)))"
      "done";
    t_run "primitives force their arguments through user calls"
      "#lang lazy\n(define (add a b) (+ a b))\n(display (add (* 2 3) (* 10 2)))" "26";
  ]

let limited_lang =
  [
    t_run "whitelisted forms work" "#lang limited\n(define (f x) (+ x 1))\n(display (f 1))" "2";
    t_run "cond and lists available"
      "#lang limited\n(display (cond [(null? '()) 'empty] [else 'nonempty]))" "empty";
    t_err "match is not in the teaching language" "#lang limited\n(match 1 [x x])" "unbound";
    t_err "vectors are not in the teaching language" "#lang limited\n(vector 1 2)" "unbound";
    t_err "set! is not in the teaching language" "#lang limited\n(define x 1)\n(set! x 2)"
      "unbound";
  ]

let registration =
  [
    Alcotest.test_case "a language built at runtime from the public API" `Quick (fun () ->
        (* a 'verbose' language: prints every top-level form before running *)
        let mb form =
          match Stx.to_list form with
          | Some (_ :: body) ->
              let announce f =
                Stx.list
                  [
                    Baselang.bid "begin";
                    Stx.list
                      [
                        Baselang.bid "displayln";
                        Stx.list [ Baselang.bid "quote"; Stx.str_ (Stx.to_string f) ];
                      ];
                    f;
                  ]
              in
              Stx.list ((Expander.core_id "#%plain-module-begin") :: List.map announce body)
          | Some [] | None -> failwith "bad"
        in
        let name = fresh "verbose-lang" in
        let _m, _ =
          Modsys.declare_builtin ~name
            ~reexports:
              (List.filter_map
                 (fun (e : Modsys.export) ->
                   if e.Modsys.ext_name = "#%module-begin" then None
                   else Some (e.Modsys.ext_name, e.Modsys.binding))
                 (Modsys.find "racket").Modsys.exports)
            ~macros:[ ("#%module-begin", Denote.Native ("#%module-begin", mb)) ]
            ()
        in
        let out = run_string (Printf.sprintf "#lang %s\n(display (+ 1 2))\n" name) in
        check_b "announces the form" true (contains out "(display (+ 1 2))");
        check_b "then runs it" true (contains out "3"));
    Alcotest.test_case "language aliases resolve to the same module" `Quick (fun () ->
        check_b "typed alias" true (Modsys.find "typed" == Modsys.find "typed/racket");
        check_b "simple-type alias" true (Modsys.find "simple-type" == Modsys.find "typed/racket"));
    t_run "simple-type language name from the paper (§4.1)"
      "#lang simple-type\n(define x : Integer 1)\n(define y : Integer 2)\n(define (f [z : Integer]) : Integer (* x (+ y z)))\n(display (f 4))"
      "6";
  ]

let suite = count_lang @ lazy_lang @ limited_lang @ registration
