(** Contract tests: flat contracts, function contracts, blame assignment
    (positive vs negative party), and the structural combinators (§6). *)

open Liblang_core.Core
open Test_util
module C = Contracts

let proj c v ~pos ~neg = C.project c v ~pos ~neg

let blame_of f =
  match f () with
  | _ -> None
  | exception C.Contract_violation { blame; _ } -> Some blame

let vi n = Value.Int n
let vs s = Value.string_ s

let flat_tests =
  [
    Alcotest.test_case "flat passes conforming value" `Quick (fun () ->
        check_b "int ok" true (proj C.integer_c (vi 5) ~pos:"p" ~neg:"n" = vi 5));
    Alcotest.test_case "flat rejects, blaming positive" `Quick (fun () ->
        check_b "blames p" true
          (blame_of (fun () -> proj C.integer_c (vs "no") ~pos:"p" ~neg:"n") = Some "p"));
    Alcotest.test_case "any/c accepts everything" `Quick (fun () ->
        List.iter
          (fun v -> check_b "ok" true (proj C.any_c v ~pos:"p" ~neg:"n" == v))
          [ vi 1; vs "x"; Value.Bool false; Value.Nil ]);
    Alcotest.test_case "base type contracts" `Quick (fun () ->
        let ok c v = blame_of (fun () -> proj c v ~pos:"p" ~neg:"n") = None in
        check_b "float" true (ok C.flonum_c (Value.Float 1.5));
        check_b "float rejects int" false (ok C.flonum_c (vi 1));
        check_b "number takes cpx" true (ok C.number_c (Value.Cpx (1., 2.)));
        check_b "bool" true (ok C.boolean_c (Value.Bool true));
        check_b "symbol" true (ok C.symbol_c (Value.Sym "s"));
        check_b "string rejects symbol" false (ok C.string_c (Value.Sym "s"));
        check_b "null" true (ok C.null_c Value.Nil));
    Alcotest.test_case "or/c passes if any branch passes" `Quick (fun () ->
        let c = C.or_c [ C.integer_c; C.flonum_c ] in
        check_b "int" true (blame_of (fun () -> proj c (vi 1) ~pos:"p" ~neg:"n") = None);
        check_b "float" true
          (blame_of (fun () -> proj c (Value.Float 1.) ~pos:"p" ~neg:"n") = None);
        check_b "string blames p" true
          (blame_of (fun () -> proj c (vs "x") ~pos:"p" ~neg:"n") = Some "p"));
  ]

let arrow_tests =
  [
    Alcotest.test_case "arrow passes conforming call" `Quick (fun () ->
        let f = Value.prim "inc" (function [ Value.Int n ] -> vi (n + 1) | _ -> assert false) in
        let wrapped = proj (C.arrow [ C.integer_c ] C.integer_c) f ~pos:"srv" ~neg:"cli" in
        check_b "result" true (Interp.apply1 wrapped (vi 1) = vi 2));
    Alcotest.test_case "bad argument blames the negative party (caller)" `Quick (fun () ->
        let f = Value.prim "id" (fun vs -> List.hd vs) in
        let wrapped = proj (C.arrow [ C.integer_c ] C.integer_c) f ~pos:"srv" ~neg:"cli" in
        check_b "blames cli" true
          (blame_of (fun () -> Interp.apply1 wrapped (vs "oops")) = Some "cli"));
    Alcotest.test_case "bad result blames the positive party (provider)" `Quick (fun () ->
        let f = Value.prim "liar" (fun _ -> vs "not an int") in
        let wrapped = proj (C.arrow [ C.integer_c ] C.integer_c) f ~pos:"srv" ~neg:"cli" in
        check_b "blames srv" true (blame_of (fun () -> Interp.apply1 wrapped (vi 1)) = Some "srv"));
    Alcotest.test_case "non-procedure blames positive immediately" `Quick (fun () ->
        check_b "blames srv" true
          (blame_of (fun () -> proj (C.arrow [ C.integer_c ] C.integer_c) (vi 5) ~pos:"srv" ~neg:"cli")
          = Some "srv"));
    Alcotest.test_case "wrong arity blames negative" `Quick (fun () ->
        let f = Value.prim "two" (fun _ -> vi 0) in
        let wrapped = proj (C.arrow [ C.integer_c; C.integer_c ] C.integer_c) f ~pos:"s" ~neg:"c" in
        check_b "blames c" true (blame_of (fun () -> Interp.apply1 wrapped (vi 1)) = Some "c"));
    Alcotest.test_case "higher-order: function-typed argument, blame swaps twice" `Quick
      (fun () ->
        (* (-> (-> Integer Integer) Integer): if the SERVER calls the
           client's function with a bad argument, the server is to blame *)
        let c = C.arrow [ C.arrow [ C.integer_c ] C.integer_c ] C.integer_c in
        let server_fn =
          Value.prim "apply-badly" (function
            | [ g ] -> Interp.apply1 g (vs "bad")
            | _ -> assert false)
        in
        let wrapped = proj c server_fn ~pos:"srv" ~neg:"cli" in
        let client_g = Value.prim "g" (fun _ -> vi 0) in
        check_b "blames srv" true (blame_of (fun () -> Interp.apply1 wrapped client_g) = Some "srv"));
  ]

let structural_tests =
  [
    Alcotest.test_case "listof passes and rejects" `Quick (fun () ->
        let c = C.listof C.integer_c in
        let ok = Value.of_list [ vi 1; vi 2 ] in
        check_b "ok" true (blame_of (fun () -> proj c ok ~pos:"p" ~neg:"n") = None);
        let bad = Value.of_list [ vi 1; vs "x" ] in
        check_b "element blame" true (blame_of (fun () -> proj c bad ~pos:"p" ~neg:"n") = Some "p");
        check_b "non-list" true (blame_of (fun () -> proj c (vi 1) ~pos:"p" ~neg:"n") = Some "p"));
    Alcotest.test_case "empty list satisfies listof" `Quick (fun () ->
        check_b "nil ok" true
          (blame_of (fun () -> proj (C.listof C.integer_c) Value.Nil ~pos:"p" ~neg:"n") = None));
    Alcotest.test_case "pair contract" `Quick (fun () ->
        let c = C.pair_c C.integer_c C.string_c in
        check_b "ok" true
          (blame_of (fun () -> proj c (Value.cons (vi 1) (vs "x")) ~pos:"p" ~neg:"n") = None);
        check_b "bad cdr" true
          (blame_of (fun () -> proj c (Value.cons (vi 1) (vi 2)) ~pos:"p" ~neg:"n") = Some "p"));
    Alcotest.test_case "vectorof" `Quick (fun () ->
        let c = C.vectorof C.integer_c in
        check_b "ok" true
          (blame_of (fun () -> proj c (Value.Vec [| vi 1; vi 2 |]) ~pos:"p" ~neg:"n") = None);
        check_b "bad elem" true
          (blame_of (fun () -> proj c (Value.Vec [| vs "x" |]) ~pos:"p" ~neg:"n") = Some "p"));
  ]

(* Contracts used from the object language, as the typed library does. *)
let object_language =
  [
    t_ev "contract prim passes" "(contract integer-contract 42 'pos 'neg)" "42";
    t_ev "flat-contract from predicate" "(contract (flat-contract \"even\" even?) 4 'p 'n)" "4";
    t_ev "arrow-contract wraps"
      "((contract (arrow-contract (list integer-contract) integer-contract) add1 'p 'n) 5)" "6";
    t_ev "listof-contract" "(contract (listof-contract integer-contract) '(1 2 3) 'p 'n)" "(1 2 3)";
    Alcotest.test_case "violation from object language carries blame" `Quick (fun () ->
        match ev "(contract integer-contract \"s\" 'server 'client)" with
        | _ -> Alcotest.fail "expected violation"
        | exception C.Contract_violation { blame; _ } -> check_s "blame" "server" blame);
  ]

let suite = flat_tests @ arrow_tests @ structural_tests @ object_language
