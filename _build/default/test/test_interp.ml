(** Evaluator semantics: binding forms, closures, tail calls, mutation,
    control flow — under both the closure-compiling backend and the naive
    AST walker (they must agree). *)

open Liblang_core.Core
open Test_util

let core_semantics =
  [
    t_ev "lambda id" "((lambda (x) x) 42)" "42";
    t_ev "lambda multi" "((lambda (a b c) (list c b a)) 1 2 3)" "(3 2 1)";
    t_ev "lambda rest only" "((lambda args args) 1 2 3)" "(1 2 3)";
    t_ev "lambda fixed+rest" "((lambda (a . rest) (cons rest a)) 1 2 3)" "((2 3) . 1)";
    t_ev "lambda rest empty" "((lambda (a . rest) rest) 1)" "()";
    t_ev "lexical scope" "(let ([x 1]) (let ([f (lambda () x)]) (let ([x 2]) (f))))" "1";
    t_ev "closure captures" "(let ([mk (lambda (n) (lambda (x) (+ x n)))]) ((mk 10) 5))" "15";
    t_ev "shadowing" "(let ([x 1]) (let ([x 2]) x))" "2";
    t_ev "shadowing restores" "(let ([x 1]) (let ([x 2]) (void)) x)" "1";
    t_ev "let is parallel" "(let ([x 1]) (let ([x 2] [y x]) y))" "1";
    t_ev "let* is sequential" "(let ([x 1]) (let* ([x 2] [y x]) y))" "2";
    t_ev "letrec mutual"
      "(letrec ([even? (lambda (n) (if (= n 0) #t (odd? (- n 1))))]
                [odd? (lambda (n) (if (= n 0) #f (even? (- n 1))))])
         (list (even? 10) (odd? 10)))"
      "(#t #f)";
    t_ev "named let" "(let loop ([i 0] [acc 1]) (if (= i 5) acc (loop (+ i 1) (* acc 2))))" "32";
    t_ev "if" "(list (if #t 1 2) (if #f 1 2))" "(1 2)";
    t_ev "begin sequencing" "(let ([b (box 0)]) (begin (set-box! b 1) (set-box! b (+ (unbox b) 10)) (unbox b)))"
      "11";
    t_ev "begin0" "(let ([b (box 1)]) (begin0 (unbox b) (set-box! b 99)))" "1";
    t_ev "set! local" "(let ([x 1]) (set! x 41) (+ x 1))" "42";
    t_ev "set! captured" "(let ([x 0]) (let ([inc (lambda () (set! x (+ x 1)))]) (inc) (inc) x))" "2";
    t_ev "when true" "(when (= 1 1) 'a 'b)" "b";
    t_ev "when false is void" "(void? (when #f 'x))" "#t";
    t_ev "unless" "(unless (= 1 2) 'ran)" "ran";
    t_ev "cond arrow" "(cond [(assq 'b '((a 1) (b 2))) => cadr] [else 'no])" "2";
    t_ev "cond test-only clause" "(cond [#f] [42] [else 'no])" "42";
    t_ev "cond empty" "(void? (cond))" "#t";
    t_ev "case else" "(case 99 [(1) 'one] [else 'other])" "other";
    t_ev "case multi-datum" "(case 5 [(2 3 5 7) 'prime] [else 'no])" "prime";
    t_ev "and short-circuits" "(let ([b (box 'untouched)]) (and #f (set-box! b 'touched)) (unbox b))"
      "untouched";
    t_ev "or short-circuits" "(let ([b (box 'untouched)]) (or 1 (set-box! b 'touched)) (unbox b))"
      "untouched";
    t_ev "and returns last" "(and 1 2 3)" "3";
    t_ev "or returns first truthy" "(or #f 2 3)" "2";
    t_ev "quote self" "'(1 \"a\" #\\b 2.5 #(v))" "(1 \"a\" #\\b 2.5 #(v))";
    t_ev "quote is a value" "(car '(1 2))" "1";
  ]

let errors =
  [
    t_ev_err "apply non-procedure" "(1 2)" "not a procedure";
    t_ev_err "arity too few" "((lambda (a b) a) 1)" "arity mismatch";
    t_ev_err "arity too many" "((lambda (a) a) 1 2)" "arity mismatch";
    t_ev_err "rest arity minimum" "((lambda (a b . r) r) 1)" "arity mismatch";
    t_ev_err "unbound variable" "(this-is-not-bound)" "unbound";
    t_err "reference before definition" "#lang racket\n(define (f) g)\n(f)\n(define g 1)"
      "cannot reference before definition";
  ]

(* Deep tail recursion must run in constant stack under both evaluators. *)
let tail_calls =
  let loop_src = "(let loop ([i 0]) (if (= i 3000000) 'done (loop (+ i 1))))" in
  let mutual =
    "(letrec ([a (lambda (n) (if (= n 0) 'done (b (- n 1))))]\n\
    \          [b (lambda (n) (a n))])\n\
    \   (a 2000000))"
  in
  [
    t_ev "tail loop 3e6 iterations" loop_src "done";
    t_ev "mutual tail recursion" mutual "done";
    t_ev "tail call through cond" "(let loop ([i 0]) (cond [(= i 1000000) 'done] [else (loop (+ i 1))]))"
      "done";
    t_ev "tail call through when/begin"
      "(let ([b (box 0)]) (let loop ([i 0]) (if (= i 500000) (unbox b) (begin (set-box! b i) (loop (+ i 1))))))"
      "499999";
  ]

(* The naive backend computes the same answers (used as the comparison
   series in Fig. 6/8). *)
let backends_agree =
  let progs =
    [
      ("closures", "(display ((let ([n 10]) (lambda (x) (* n x))) 4))");
      ("letrec", "(display (letrec ([f (lambda (n) (if (= n 0) 1 (* n (f (- n 1)))))]) (f 6)))");
      ("floats", "(display (+ (* 1.5 2.0) (sqrt 16.0)))");
      ("lists", "(display (map (lambda (x) (* x x)) '(1 2 3)))");
      ("mutation", "(define b (box 0)) (set-box! b 42) (display (unbox b))");
      ("varargs", "(display (apply + 1 2 '(3 4)))");
    ]
  in
  List.map
    (fun (name, body) ->
      Alcotest.test_case ("naive agrees: " ^ name) `Quick (fun () ->
          let src = "#lang racket\n" ^ body in
          let fast = run src in
          let saved = !Modsys.evaluator in
          Modsys.evaluator := Naive.eval_top;
          Fun.protect
            ~finally:(fun () -> Modsys.evaluator := saved)
            (fun () ->
              let slow = run src in
              check_s name fast slow)))
    progs

(* The fused unsafe-float closures must agree with the generic operations
   on every operand shape (constants, locals at several depths, computed
   subexpressions). *)
let fused_shapes =
  let mk name unsafe generic =
    Alcotest.test_case ("fused = generic: " ^ name) `Quick (fun () ->
        check_s name (ev generic) (ev unsafe))
  in
  [
    mk "const/const" "(unsafe-fl+ 1.5 2.5)" "(+ 1.5 2.5)";
    mk "local0/const" "(let ([x 3.5]) (unsafe-fl* x 2.0))" "(let ([x 3.5]) (* x 2.0))";
    mk "const/local0" "(let ([x 3.5]) (unsafe-fl- 10.0 x))" "(let ([x 3.5]) (- 10.0 x))";
    mk "local0/local0" "(let ([x 3.0] [y 4.0]) (unsafe-fl/ x y))" "(let ([x 3.0] [y 4.0]) (/ x y))";
    mk "local1/local0" "(let ([x 2.0]) (let ([y 3.0]) (unsafe-fl+ x y)))"
      "(let ([x 2.0]) (let ([y 3.0]) (+ x y)))";
    mk "deep local" "(let ([a 1.0]) (let ([b 2.0]) (let ([c 3.0]) (let ([d 4.0]) (unsafe-fl+ a d)))))"
      "(let ([a 1.0]) (let ([b 2.0]) (let ([c 3.0]) (let ([d 4.0]) (+ a d)))))";
    mk "computed operands" "(unsafe-fl+ ((lambda () 1.5)) ((lambda () 2.0)))"
      "(+ ((lambda () 1.5)) ((lambda () 2.0)))";
    mk "nested unsafe tree" "(unsafe-fl* (unsafe-fl+ 1.0 2.0) (unsafe-flsqrt 16.0))"
      "(* (+ 1.0 2.0) (sqrt 16.0))";
    mk "unary shapes" "(let ([x 2.25]) (list (unsafe-flsqrt x) (unsafe-flabs -3.0) (unsafe-flsin 0.0)))"
      "(let ([x 2.25]) (list (sqrt x) (abs -3.0) (sin 0.0)))";
    mk "cmp shapes" "(let ([x 1.0]) (list (unsafe-fl< x 2.0) (unsafe-fl>= 3.0 x)))"
      "(let ([x 1.0]) (list (< x 2.0) (>= 3.0 x)))";
    mk "complex shapes" "(let ([z 1.0+2.0i]) (unsafe-c* z (unsafe-c+ z 1.0+0.0i)))"
      "(let ([z 1.0+2.0i]) (* z (+ z 1.0+0.0i)))";
    mk "complex via rect" "(unsafe-magnitude (unsafe-make-rectangular 3.0 4.0))"
      "(magnitude (make-rectangular 3.0 4.0))";
  ]

(* With the unboxing backend disabled (ablation), results are identical. *)
let unboxing_off =
  [
    Alcotest.test_case "unboxing off: same results" `Quick (fun () ->
        let src = "(unsafe-fl* (unsafe-fl+ 1.5 2.5) (unsafe-flsqrt 4.0))" in
        let on = ev src in
        Interp.unboxing_enabled := false;
        Fun.protect
          ~finally:(fun () -> Interp.unboxing_enabled := true)
          (fun () -> check_s "same" on (ev src)));
  ]

let suite = core_semantics @ errors @ tail_calls @ backends_agree @ fused_shapes @ unboxing_off
