test/test_types.ml: Alcotest Datum Liblang_core List Option Reader Test_util Types
