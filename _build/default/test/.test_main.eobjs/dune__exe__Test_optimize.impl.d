test/test_optimize.ml: Alcotest Fun Hashtbl Liblang_core List Optimize Option Printf Programs String Test_util
