test/test_runtime.ml: Test_util
