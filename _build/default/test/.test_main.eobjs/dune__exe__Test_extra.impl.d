test/test_extra.ml: Alcotest Printf Test_util
