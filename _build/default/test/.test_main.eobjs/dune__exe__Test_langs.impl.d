test/test_langs.ml: Alcotest Baselang Denote Expander Liblang_core List Modsys Printf Stx Test_util
