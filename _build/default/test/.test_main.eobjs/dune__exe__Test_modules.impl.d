test/test_modules.ml: Alcotest Ct_store Hashtbl Liblang_core List Modsys Prims Printf String Stx Test_util Value
