test/test_util.ml: Alcotest Compile Contracts Expander Liblang_core Modsys Printf String Types Value
