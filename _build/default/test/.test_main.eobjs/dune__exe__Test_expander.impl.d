test/test_expander.ml: Alcotest Datum Denote Expander Liblang_core List Modsys Printf Stx Test_util
