test/test_props.ml: Contracts Datum Float Interp Liblang_core List Numeric Printf QCheck QCheck_alcotest Reader Srcloc Test_util Types Value
