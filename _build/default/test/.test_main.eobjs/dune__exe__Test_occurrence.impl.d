test/test_occurrence.ml: Alcotest Liblang_core Test_util
