test/test_contracts.ml: Alcotest Contracts Interp Liblang_core List Test_util Value
