test/test_interp.ml: Alcotest Fun Interp Liblang_core List Modsys Naive Test_util
