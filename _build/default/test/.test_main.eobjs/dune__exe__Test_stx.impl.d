test/test_stx.ml: Alcotest Binding Datum Liblang_core List Option Reader Stx Test_util
