test/test_check.ml: Test_util
