test/test_boundary.ml: Alcotest Boundary Datum Expander Liblang_core Option Printf Reader Stx Test_util Types
