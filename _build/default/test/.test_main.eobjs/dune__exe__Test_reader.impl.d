test/test_reader.ml: Alcotest Datum Float Liblang_core List Printf Reader Srcloc Test_util
