(** Module-system tests: provides/requires, static exports, separate
    compilation with fresh compile-time stores, and compile-time
    declarations replayed at visit time (paper §2.3, §5). *)

open Liblang_core.Core
open Test_util

let basics =
  [
    Alcotest.test_case "provide / require of a value" `Quick (fun () ->
        let srv = fresh "m-srv" in
        declare ~name:srv (Printf.sprintf "#lang racket\n(provide the-answer)\n(define the-answer 42)");
        check_s "imported" "42"
          (run (Printf.sprintf "#lang racket\n(require %s)\n(display the-answer)" srv)));
    Alcotest.test_case "provide a function" `Quick (fun () ->
        let srv = fresh "m-fn" in
        declare ~name:srv "#lang racket\n(provide sq)\n(define (sq x) (* x x))";
        check_s "call" "49" (run (Printf.sprintf "#lang racket\n(require %s)\n(display (sq 7))" srv)));
    Alcotest.test_case "rename-out" `Quick (fun () ->
        let srv = fresh "m-ren" in
        declare ~name:srv "#lang racket\n(provide (rename-out [internal external]))\n(define internal 'payload)";
        check_s "external name" "payload"
          (run (Printf.sprintf "#lang racket\n(require %s)\n(display external)" srv)));
    Alcotest.test_case "only-in with rename" `Quick (fun () ->
        let srv = fresh "m-only" in
        declare ~name:srv "#lang racket\n(provide a b)\n(define a 1)\n(define b 2)";
        check_s "renamed" "1"
          (run (Printf.sprintf "#lang racket\n(require (only-in %s [a my-a]))\n(display my-a)" srv));
        check_s "plain only-in" "2"
          (run (Printf.sprintf "#lang racket\n(require (only-in %s b))\n(display b)" srv)));
    Alcotest.test_case "only-in hides others" `Quick (fun () ->
        let srv = fresh "m-hide" in
        declare ~name:srv "#lang racket\n(provide a b)\n(define a 1)\n(define b 2)";
        let msg =
          run_err (Printf.sprintf "#lang racket\n(require (only-in %s a))\n(display b)" srv)
        in
        check_b "b unbound" true (contains msg "unbound"));
    Alcotest.test_case "unprovided bindings stay private" `Quick (fun () ->
        let srv = fresh "m-priv" in
        declare ~name:srv "#lang racket\n(provide pub)\n(define pub 1)\n(define priv 2)";
        let msg = run_err (Printf.sprintf "#lang racket\n(require %s)\n(display priv)" srv) in
        check_b "priv unbound" true (contains msg "unbound"));
    Alcotest.test_case "requiring an unknown module" `Quick (fun () ->
        check_b "unknown" true
          (contains (run_err "#lang racket\n(require no-such-module-zzz)") "unknown module"));
    Alcotest.test_case "unknown language" `Quick (fun () ->
        check_b "unknown lang" true (contains (run_err "#lang no-such-lang\n(+ 1 2)") "unknown language"));
    Alcotest.test_case "missing export" `Quick (fun () ->
        let srv = fresh "m-miss" in
        declare ~name:srv "#lang racket\n(provide a)\n(define a 1)";
        check_b "no binding named" true
          (contains
             (run_err (Printf.sprintf "#lang racket\n(require (only-in %s nothere))" srv))
             "provides no binding"));
  ]

let static_exports =
  [
    Alcotest.test_case "macros can be provided (static bindings, §2.3)" `Quick (fun () ->
        let srv = fresh "m-macro" in
        declare ~name:srv
          "#lang racket\n(provide double)\n(define-syntax-rule (double e) (* 2 e))";
        check_s "macro import" "14"
          (run (Printf.sprintf "#lang racket\n(require %s)\n(display (double 7))" srv)));
    Alcotest.test_case "provided macro references module-private helper" `Quick (fun () ->
        (* the classic linguistic-reuse test: the macro's template identifier
           resolves at its definition site *)
        let srv = fresh "m-helper" in
        declare ~name:srv
          "#lang racket\n(provide call-helper)\n(define (helper) 'from-server)\n(define-syntax-rule (call-helper) (helper))";
        check_s "helper resolves in server" "from-server"
          (run (Printf.sprintf "#lang racket\n(require %s)\n(display (call-helper))" srv)));
    Alcotest.test_case "value binding replaced by macro does not break client source" `Quick
      (fun () ->
        (* §2.3: "value bindings can be replaced with static bindings without
           breaking clients" — same client source works with either server *)
        let client srv = Printf.sprintf "#lang racket\n(require %s)\n(display (thing 3))" srv in
        let srv1 = fresh "m-val" in
        declare ~name:srv1 "#lang racket\n(provide thing)\n(define (thing x) (+ x 1))";
        check_s "as function" "4" (run (client srv1));
        let srv2 = fresh "m-stx" in
        declare ~name:srv2 "#lang racket\n(provide thing)\n(define-syntax-rule (thing e) (+ e 1))";
        check_s "as macro" "4" (run (client srv2)));
  ]

let instantiation =
  [
    Alcotest.test_case "module body effects run once per instantiation chain" `Quick (fun () ->
        let srv = fresh "m-once" in
        declare ~name:srv "#lang racket\n(provide x)\n(define x 1)\n(display \"side\")";
        let a = fresh "m-client-a" in
        declare ~name:a (Printf.sprintf "#lang racket\n(require %s)\n(display x)" srv);
        (* running the client instantiates the server exactly once *)
        let out, () =
          Prims.with_captured_output (fun () -> Modsys.instantiate (Modsys.find a))
        in
        check_s "server output once" "side1" out);
    Alcotest.test_case "diamond requires instantiate shared dep once" `Quick (fun () ->
        let base = fresh "m-base" in
        declare ~name:base "#lang racket\n(provide v)\n(define v 5)\n(display \"B\")";
        let left = fresh "m-left" in
        declare ~name:left (Printf.sprintf "#lang racket\n(require %s)\n(provide l)\n(define l (+ v 1))" base);
        let right = fresh "m-right" in
        declare ~name:right (Printf.sprintf "#lang racket\n(require %s)\n(provide r)\n(define r (+ v 2))" base);
        let top = fresh "m-top" in
        declare ~name:top
          (Printf.sprintf "#lang racket\n(require %s)\n(require %s)\n(display (+ l r))" left right);
        let out, () =
          Prims.with_captured_output (fun () -> Modsys.instantiate (Modsys.find top))
        in
        check_s "B once then 13" "B13" out);
    Alcotest.test_case "imported binding keeps identity (shared cell)" `Quick (fun () ->
        let srv = fresh "m-cell" in
        declare ~name:srv
          "#lang racket\n(provide get bump)\n(define counter 0)\n(define (get) counter)\n(define (bump) (set! counter (+ counter 1)))";
        let out =
          run
            (Printf.sprintf "#lang racket\n(require %s)\n(bump)(bump)(display (get))" srv)
        in
        check_s "shared state" "2" out);
  ]

(* §5: each module is compiled with a fresh compile-time store; mutations
   during one compilation don't leak into another, but begin-for-syntax
   declarations persist via replay. *)
let fresh_stores =
  [
    Alcotest.test_case "with_fresh_store isolates mutations" `Quick (fun () ->
        Ct_store.set "probe" (Value.Int 1);
        Ct_store.with_fresh_store (fun () ->
            check_b "fresh store starts empty" true (Ct_store.get "probe" = None);
            Ct_store.set "probe" (Value.Int 2));
        check_b "outer store untouched" true (Ct_store.get "probe" = Some (Value.Int 1)));
    Alcotest.test_case "uid tables are per store" `Quick (fun () ->
        let t1 = Ct_store.uid_table "probe-table" in
        Hashtbl.replace t1 1 (Value.Int 10);
        Ct_store.with_fresh_store (fun () ->
            let t2 = Ct_store.uid_table "probe-table" in
            check_b "fresh table empty" true (Hashtbl.length t2 = 0)));
    Alcotest.test_case "typed type declarations replay at visit (§5)" `Quick (fun () ->
        let srv = fresh "m-types" in
        declare ~name:srv
          "#lang typed/racket\n(: inc (Integer -> Integer))\n(define (inc x) (+ x 1))\n(provide inc)";
        (* two separate client compilations each get the declaration *)
        check_s "client 1" "6"
          (run (Printf.sprintf "#lang typed/racket\n(require %s)\n(display (inc 5))" srv));
        check_s "client 2" "8"
          (run (Printf.sprintf "#lang typed/racket\n(require %s)\n(display (inc 7))" srv)));
    Alcotest.test_case "typed-context? flag does not leak between compilations (§6.2)" `Quick
      (fun () ->
        (* compile a typed module (sets the flag in its own store), then an
           untyped client: the untyped client must still get the contract *)
        let srv = fresh "m-flag" in
        declare ~name:srv
          "#lang typed/racket\n(: f (Integer -> Integer))\n(define (f x) x)\n(provide f)";
        declare ~name:(fresh "m-flag-typed-client")
          (Printf.sprintf "#lang typed/racket\n(require %s)\n(display (f 1))" srv);
        (* now the untyped client, compiled after a typed compilation *)
        let msg =
          run_err (Printf.sprintf "#lang racket\n(require %s)\n(f \"bad\")" srv)
        in
        check_b "still contracted" true (contains msg "contract"));
  ]

let expansion_views =
  [
    Alcotest.test_case "expand_source shows core forms" `Quick (fun () ->
        let forms =
          Modsys.expand_source ~name:(fresh "m-exp")
            "#lang racket\n(define (f x) (* x 2))\n(display (f 3))"
        in
        let text = String.concat "\n" (List.map Stx.to_string forms) in
        check_b "define-values" true (contains text "define-values");
        check_b "plain-lambda" true (contains text "#%plain-lambda");
        check_b "plain-app" true (contains text "#%plain-app"));
    Alcotest.test_case "expand_source of typed module shows optimizer output" `Quick (fun () ->
        let forms =
          Modsys.expand_source ~name:(fresh "m-exp-t")
            "#lang typed/racket\n(define (f [x : Float]) : Float (* x 2.0))"
        in
        let text = String.concat "\n" (List.map Stx.to_string forms) in
        check_b "unsafe-fl*" true (contains text "unsafe-fl*"));
  ]

let suite = basics @ static_exports @ instantiation @ fresh_stores @ expansion_views
