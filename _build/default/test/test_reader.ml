(** Reader tests: datum syntax, locations, comments, error reporting. *)

open Liblang_core.Core
open Test_util

let read1 src =
  match Reader.read_one src with
  | Some a -> Datum.to_string a.Datum.d
  | None -> "<eof>"

let t name src expect =
  Alcotest.test_case name `Quick (fun () -> check_s name expect (read1 src))

let terr name src fragment =
  Alcotest.test_case name `Quick (fun () ->
      match read1 src with
      | out -> Alcotest.failf "%s: expected reader error, got %s" name out
      | exception Reader.Error (m, _) ->
          if not (contains m fragment) then
            Alcotest.failf "%s: expected error containing %S, got %S" name fragment m)

let atoms =
  [
    t "fixnum" "42" "42";
    t "negative fixnum" "-17" "-17";
    t "explicit positive" "+17" "17";
    t "hex" "#x2a" "42";
    t "hex negative" "#x-2a" "-42";
    t "binary" "#b1010" "10";
    t "octal" "#o17" "15";
    t "decimal radix" "#d42" "42";
    t "flonum" "3.5" "3.5";
    t "flonum integral shows point" "3.0" "3.0";
    t "leading dot" ".5" "0.5";
    t "trailing dot" "5." "5.0";
    t "exponent" "1e3" "1000.0";
    t "negative exponent" "2.5e-2" "0.025";
    t "+inf.0" "+inf.0" "+inf.0";
    t "-inf.0" "-inf.0" "-inf.0";
    t "+nan.0" "+nan.0" "+nan.0";
    t "complex" "1.0+2.0i" "1.0+2.0i";
    t "complex negative imag" "1.0-2.0i" "1.0-2.0i";
    t "complex int parts" "1+2i" "1.0+2.0i";
    t "pure imaginary" "+2.0i" "0.0+2.0i";
    t "complex with exponents" "1e2+5e-1i" "100.0+0.5i";
    t "symbol" "foo" "foo";
    t "symbol with dashes" "list->vector" "list->vector";
    t "symbol +" "+" "+";
    t "symbol -" "-" "-";
    t "symbol ..." "..." "...";
    t "symbol 1+" "1+" "1+";
    t "hash-percent symbol" "#%app" "#%app";
    t "true" "#t" "#t";
    t "true long" "#true" "#t";
    t "false" "#f" "#f";
    t "string" {|"hello"|} {|"hello"|};
    t "string with escapes" {|"a\nb\t\"c\\"|} "\"a\\nb\\t\\\"c\\\\\"";
    t "char" "#\\a" "#\\a";
    t "char space" "#\\space" "#\\space";
    t "char newline" "#\\newline" "#\\newline";
    t "char tab" "#\\tab" "#\\tab";
    t "char open paren" "#\\(" "#\\(";
  ]

let lists =
  [
    t "empty list" "()" "()";
    t "flat list" "(1 2 3)" "(1 2 3)";
    t "nested" "(a (b (c)) d)" "(a (b (c)) d)";
    t "brackets" "[a b]" "(a b)";
    t "mixed brackets" "(let ([x 1]) x)" "(let ((x 1)) x)";
    t "dotted pair" "(a . b)" "(a . b)";
    t "dotted list" "(a b . c)" "(a b . c)";
    t "dotted collapse" "(a . (b c))" "(a b c)";
    t "dotted collapse nested" "(a . (b . (c . ())))" "(a b c)";
    t "vector" "#(1 2 3)" "#(1 2 3)";
    t "empty vector" "#()" "#()";
    t "quote sugar" "'x" "'x";
    t "quote list" "'(1 2)" "'(1 2)";
    t "quasiquote sugar" "`x" "`x";
    t "unquote sugar" ",x" ",x";
    t "unquote-splicing sugar" ",@x" ",@x";
    t "nested quotes" "''x" "''x";
    t "syntax quote" "#'x" "(syntax x)";
    t "quasisyntax" "#`x" "(quasisyntax x)";
    t "unsyntax" "#,x" "(unsyntax x)";
  ]

let comments =
  [
    t "line comment" "; hi\n42" "42";
    t "block comment" "#| hi |# 42" "42";
    t "nested block comment" "#| a #| b |# c |# 42" "42";
    t "datum comment" "#;(skipped) 42" "42";
    t "datum comment in list" "(1 #;2 3)" "(1 3)";
    t "comment between" "(1 ; x\n 2)" "(1 2)";
  ]

let errors =
  [
    terr "unterminated list" "(1 2" "unterminated";
    terr "unterminated string" {|"abc|} "unterminated string";
    terr "stray close" ")" "close paren";
    terr "unterminated block comment" "#| hi" "unterminated block comment";
    terr "bad boolean" "#tx" "bad boolean";
    terr "dotted head" "(. x)" "dotted";
    terr "bad radix" "#xZZ" "bad radix";
    terr "unknown hash" "#armadillo" "unknown reader syntax";
  ]

let multiple =
  [
    Alcotest.test_case "read_all counts" `Quick (fun () ->
        check_i "count" 3 (List.length (Reader.read_all "1 (2 3) four")));
    Alcotest.test_case "read_all empty" `Quick (fun () ->
        check_i "count" 0 (List.length (Reader.read_all "  ; nothing\n")));
    Alcotest.test_case "locations" `Quick (fun () ->
        match Reader.read_all ~file:"f.rkt" "x\n  yy" with
        | [ a; b ] ->
            check_i "line a" 1 a.Datum.loc.Srcloc.line;
            check_i "line b" 2 b.Datum.loc.Srcloc.line;
            check_i "col b" 2 b.Datum.loc.Srcloc.col;
            check_i "span b" 2 b.Datum.loc.Srcloc.span
        | _ -> Alcotest.fail "expected 2 datums");
    Alcotest.test_case "#lang line split" `Quick (fun () ->
        match Reader.split_lang_line "#lang racket\n(+ 1 2)" with
        | Some ("racket", rest) -> check_i "rest datums" 1 (List.length (Reader.read_all rest))
        | _ -> Alcotest.fail "expected #lang split");
    Alcotest.test_case "#lang with slash" `Quick (fun () ->
        match Reader.split_lang_line "#lang typed/racket\n" with
        | Some ("typed/racket", _) -> ()
        | _ -> Alcotest.fail "expected typed/racket");
    Alcotest.test_case "no #lang line" `Quick (fun () ->
        check_b "none" true (Reader.split_lang_line "(display 1)" = None));
    Alcotest.test_case "float round-trip" `Quick (fun () ->
        List.iter
          (fun f ->
            let s = Datum.float_to_string f in
            match Reader.parse_number s with
            | Some (Datum.Float f') ->
                check_b (Printf.sprintf "%s round-trips" s) true (Float.equal f f')
            | _ -> Alcotest.failf "%s did not parse as float" s)
          [ 0.1; 1.5; -3.25; 1e100; 1e-100; 0.30000000000000004; Float.pi ]);
  ]

let suite = atoms @ lists @ comments @ errors @ multiple
