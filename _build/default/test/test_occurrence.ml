(** Occurrence typing (simplified): [(if (pred x) … …)] narrows the type of
    [x] per branch — the Typed Racket idiom support the paper's §3 calls
    "a type system that accommodates the idioms of Racket". *)

open Test_util

let tp name body expect = t_run name ("#lang typed/racket\n" ^ body) expect
let te name body frag = t_err name ("#lang typed/racket\n" ^ body) frag

let narrowing =
  [
    tp "flonum? narrows a union"
      "(define (f [x : (U Float String)]) : Float (if (flonum? x) (+ x 1.0) 0.0))\n(display (list (f 2.5) (f \"s\")))"
      "(3.5 0.0)";
    tp "else branch gets the complement"
      "(define (f [x : (U Float String)]) : String (if (flonum? x) \"num\" (string-append x \"!\")))\n(display (f \"hi\"))"
      "hi!";
    tp "number? narrows Any (the dynamic type)"
      "(define (f [x : Any]) : Integer (if (exact-integer? x) (+ x 1) 0))\n(display (list (f 41) (f \"no\")))"
      "(42 0)";
    tp "null? on a list: else branch may take car"
      "(define (sum [l : (Listof Integer)]) : Integer (if (null? l) 0 (+ (car l) (sum (cdr l)))))\n(display (sum (list 1 2 3)))"
      "6";
    tp "pair? on a list enables car in the then branch"
      "(define (head-or [l : (Listof Integer)] [d : Integer]) : Integer (if (pair? l) (car l) d))\n(display (list (head-or (list 7) 0) (head-or '() 9)))"
      "(7 9)";
    tp "not inverts the narrowing"
      "(define (f [x : (U Float String)]) : Float (if (not (flonum? x)) 0.0 (+ x 1.0)))\n(display (f 1.0))"
      "2.0";
    tp "string? narrows for string operations"
      "(define (len [x : (U String Integer)]) : Integer (if (string? x) (string-length x) x))\n(display (list (len \"abcd\") (len 7)))"
      "(4 7)";
    te "without the test, the union member operation fails"
      "(define (f [x : (U Float String)]) : Float (+ x 1.0))" "expects numbers";
    te "narrowing does not leak outside the branch"
      "(define (f [x : (U Float String)]) : Float (begin (if (flonum? x) (+ x 1.0) 0.0) (+ x 1.0)))"
      "expects numbers";
    tp "nested narrowing"
      "(define (f [x : (U Integer Float String)]) : Real\n  (if (string? x) 0 (if (flonum? x) (+ x 0.5) (+ x 1))))\n(display (list (f \"s\") (f 1.5) (f 10)))"
      "(0 2.0 11)";
  ]

let soundness =
  [
    (* a set! variable must not be narrowed: the classic counterexample *)
    te "assigned variables are not narrowed"
      "(define (f [x : (U Float String)]) : Float\n  (if (flonum? x)\n      (begin (set! x \"gotcha\") (+ x 1.0))\n      0.0))"
      "expects numbers";
    tp "assignment in the other branch also disables narrowing"
      "(define (f [x : (U Float String)]) : Float\n  (if (flonum? x) 1.0 (begin (set! x \"s\") 0.0)))\n(display (f 2.0))"
      "1.0";
  ]

(* Narrowing feeds the optimizer: the loop below gets unsafe-car after the
   null? test — the §3.2 tag-check elimination on real list code. *)
let optimizer_integration =
  [
    Alcotest.test_case "null? test enables unsafe-car in loops" `Quick (fun () ->
        Liblang_core.Core.Optimize.reset_stats ();
        declare ~name:(fresh "occ-opt")
          "#lang typed/racket\n(define (sum [l : (Listof Integer)]) : Integer (if (null? l) 0 (+ (car l) (sum (cdr l)))))";
        check_b "unsafe-car fired" true (Liblang_core.Core.Optimize.stat "pair:car" >= 1);
        check_b "unsafe-cdr fired" true (Liblang_core.Core.Optimize.stat "pair:cdr" >= 1));
    Alcotest.test_case "flonum? narrowing enables float specialization" `Quick (fun () ->
        Liblang_core.Core.Optimize.reset_stats ();
        declare ~name:(fresh "occ-opt2")
          "#lang typed/racket\n(define (f [x : (U Float String)]) : Float (if (flonum? x) (* x 2.0) 0.0))";
        check_b "unsafe-fl* fired" true (Liblang_core.Core.Optimize.stat "fl:*" >= 1));
    t_agree "narrowed list loop agrees with untyped"
      ~untyped:
        "(define (sum l) (if (null? l) 0 (+ (car l) (sum (cdr l)))))\n(display (sum '(1 2 3 4 5)))"
      ~typed:
        "(define (sum [l : (Listof Integer)]) : Integer (if (null? l) 0 (+ (car l) (sum (cdr l)))))\n(display (sum '(1 2 3 4 5)))";
  ]

let suite = narrowing @ soundness @ optimizer_integration
