(** Property-based tests (qcheck): reader round-trips, hygiene under
    α-renaming, subtyping laws, optimizer semantic preservation on random
    well-typed float programs, and contract transparency. *)

open Liblang_core.Core
open Test_util
module T = Types
module Q = QCheck

let to_alcotest = QCheck_alcotest.to_alcotest

(* -- generators ----------------------------------------------------------- *)

let gen_atom_datum =
  Q.Gen.oneof
    [
      Q.Gen.map (fun n -> Datum.Atom (Datum.Int n)) Q.Gen.small_signed_int;
      Q.Gen.map (fun f -> Datum.Atom (Datum.Float f)) (Q.Gen.float_bound_inclusive 1000.);
      Q.Gen.map (fun b -> Datum.Atom (Datum.Bool b)) Q.Gen.bool;
      Q.Gen.map
        (fun s -> Datum.Atom (Datum.Sym ("s" ^ string_of_int (abs s))))
        Q.Gen.small_signed_int;
      Q.Gen.map (fun s -> Datum.Atom (Datum.Str s)) Q.Gen.small_string;
      Q.Gen.return (Datum.Atom (Datum.Char 'x'));
    ]

let annot d = { Datum.d; loc = Srcloc.none }

let gen_datum =
  Q.Gen.sized (fun size ->
      Q.Gen.fix
        (fun self size ->
          if size <= 1 then gen_atom_datum
          else
            Q.Gen.oneof
              [
                gen_atom_datum;
                Q.Gen.map
                  (fun xs -> Datum.List (List.map annot xs))
                  (Q.Gen.list_size (Q.Gen.int_bound 4) (self (size / 2)));
                Q.Gen.map
                  (fun xs -> Datum.Vec (List.map annot xs))
                  (Q.Gen.list_size (Q.Gen.int_bound 3) (self (size / 2)));
              ])
        (min size 12))

let arb_datum = Q.make ~print:Datum.to_string gen_datum

let gen_type =
  Q.Gen.sized (fun size ->
      Q.Gen.fix
        (fun self size ->
          let base =
            Q.Gen.oneofl
              [
                T.Integer; T.Float; T.FloatComplex; T.Real; T.Number; T.Boolean; T.String_;
                T.Symbol; T.Char_; T.Void_; T.Null; T.Any;
              ]
          in
          if size <= 1 then base
          else
            Q.Gen.oneof
              [
                base;
                Q.Gen.map (fun t -> T.Listof t) (self (size / 2));
                Q.Gen.map2 (fun a b -> T.Pairof (a, b)) (self (size / 2)) (self (size / 2));
                Q.Gen.map (fun t -> T.Vectorof t) (self (size / 2));
                Q.Gen.map2 (fun a b -> T.Fun ([ a ], b)) (self (size / 2)) (self (size / 2));
                Q.Gen.map2 (fun a b -> T.Union [ a; b ]) (self (size / 2)) (self (size / 2));
                Q.Gen.map (fun ts -> T.ListT ts) (Q.Gen.list_size (Q.Gen.int_bound 3) (self (size / 3)));
              ])
        (min size 10))

let arb_type = Q.make ~print:T.to_string gen_type

(* -- reader properties ------------------------------------------------------ *)

let reader_roundtrip =
  Q.Test.make ~name:"reader: print then parse is identity" ~count:300 arb_datum (fun d ->
      match Reader.read_one (Datum.to_string d) with
      | Some d' -> Datum.equal d d'.Datum.d
      | None -> false)

let value_roundtrip =
  Q.Test.make ~name:"value: datum->value->datum is identity" ~count:300 arb_datum (fun d ->
      Datum.equal d (Value.to_datum (Value.of_datum d)))

let quote_evaluates_to_itself =
  Q.Test.make ~name:"eval: quoted datum evaluates to itself" ~count:150 arb_datum (fun d ->
      let src = "(quote " ^ Datum.to_string d ^ ")" in
      Value.equal_values (eval_expr src) (Value.of_datum d))

(* -- subtyping laws ----------------------------------------------------------- *)

let subtype_reflexive =
  Q.Test.make ~name:"subtype: reflexive" ~count:300 arb_type (fun t -> T.subtype t t)

let subtype_top =
  Q.Test.make ~name:"subtype: Any is top" ~count:300 arb_type (fun t -> T.subtype t T.Any)

(* The dynamic type Any deliberately breaks transitivity (every type flows
   into and out of it); the law holds for chains that avoid it. *)
let rec mentions_any = function
  | T.Any -> true
  | T.Listof t | T.Vectorof t -> mentions_any t
  | T.Pairof (a, b) -> mentions_any a || mentions_any b
  | T.ListT ts | T.Union ts -> List.exists mentions_any ts
  | T.Fun (ds, r) -> List.exists mentions_any ds || mentions_any r
  | _ -> false

let subtype_transitive =
  Q.Test.make ~name:"subtype: transitive (chains avoiding the dynamic type)" ~count:500
    (Q.triple arb_type arb_type arb_type) (fun (a, b, c) ->
      mentions_any b || (not (T.subtype a b && T.subtype b c)) || T.subtype a c)

let join_upper_bound =
  Q.Test.make ~name:"join: upper bound of both sides" ~count:300 (Q.pair arb_type arb_type)
    (fun (a, b) ->
      let j = T.join a b in
      T.subtype a j && T.subtype b j)

let serialization_roundtrip =
  Q.Test.make ~name:"types: serialize round-trips" ~count:300 arb_type (fun t ->
      T.equal t (T.of_datum (T.to_datum t)))

(* -- hygiene under user α-renaming --------------------------------------------- *)

(* A macro using temporary [t] must behave identically whatever the user
   names their own variable. *)
let hygiene_alpha =
  Q.Test.make ~name:"hygiene: user variable name never matters" ~count:50
    (Q.make ~print:(fun s -> s)
       (Q.Gen.oneofl [ "t"; "tmp"; "x"; "v"; "e"; "a"; "b"; "q"; "zz" ]))
    (fun name ->
      let prog =
        Printf.sprintf
          "#lang racket\n\
           (define-syntax-rule (my-or a b) (let ([t a]) (if t t b)))\n\
           (define %s 42)\n\
           (display (my-or #f %s))"
          name name
      in
      run prog = "42")

(* -- optimizer preservation on random float expressions ------------------------- *)

(* Random arithmetic over float variables x, y and literals; the typed
   (optimized) program must print exactly what the untyped one prints. *)
let gen_float_expr =
  Q.Gen.sized (fun size ->
      Q.Gen.fix
        (fun self size ->
          let leaf =
            Q.Gen.oneof
              [
                Q.Gen.return "x";
                Q.Gen.return "y";
                Q.Gen.map (Printf.sprintf "%.3f") (Q.Gen.float_bound_inclusive 10.);
              ]
          in
          if size <= 1 then leaf
          else
            Q.Gen.oneof
              [
                leaf;
                Q.Gen.map2 (Printf.sprintf "(+ %s %s)") (self (size / 2)) (self (size / 2));
                Q.Gen.map2 (Printf.sprintf "(- %s %s)") (self (size / 2)) (self (size / 2));
                Q.Gen.map2 (Printf.sprintf "(* %s %s)") (self (size / 2)) (self (size / 2));
                Q.Gen.map (Printf.sprintf "(abs %s)") (self (size - 1));
                Q.Gen.map (Printf.sprintf "(min %s 5.0)") (self (size - 1));
                Q.Gen.map2 (Printf.sprintf "(if (< %s %s) 1.0 2.0)") (self (size / 2))
                  (self (size / 2));
              ])
        (min size 10))

let optimizer_preserves =
  Q.Test.make ~name:"optimizer: typed twin agrees on random float programs" ~count:60
    (Q.make ~print:(fun e -> e) gen_float_expr)
    (fun expr ->
      let untyped =
        Printf.sprintf "#lang racket\n(define (f x y) %s)\n(display (f 1.25 -2.5))" expr
      in
      let typed =
        Printf.sprintf
          "#lang typed/racket\n(define (f [x : Float] [y : Float]) : Float %s)\n(display (f 1.25 -2.5))"
          expr
      in
      run untyped = run typed)

(* -- contract transparency -------------------------------------------------------- *)

let contract_transparent =
  Q.Test.make ~name:"contracts: conforming integers pass through unchanged" ~count:200
    Q.small_signed_int (fun n ->
      Contracts.project Contracts.integer_c (Value.Int n) ~pos:"p" ~neg:"n" = Value.Int n)

let arrow_transparent =
  Q.Test.make ~name:"contracts: wrapped function agrees on conforming inputs" ~count:100
    Q.small_signed_int (fun n ->
      let f = Value.prim "triple" (function [ Value.Int x ] -> Value.Int (3 * x) | _ -> Value.Nil) in
      let wrapped =
        Contracts.project
          (Contracts.arrow [ Contracts.integer_c ] Contracts.integer_c)
          f ~pos:"p" ~neg:"n"
      in
      Interp.apply1 wrapped (Value.Int n) = Value.Int (3 * n))

(* -- numeric tower vs OCaml floats -------------------------------------------------- *)

let generic_add_matches_ocaml =
  Q.Test.make ~name:"numeric: generic float ops match OCaml's" ~count:300
    (Q.pair (Q.float_range (-1e6) 1e6) (Q.float_range (-1e6) 1e6))
    (fun (a, b) ->
      Numeric.add (Value.Float a) (Value.Float b) = Value.Float (a +. b)
      && Numeric.mul (Value.Float a) (Value.Float b) = Value.Float (a *. b)
      && Numeric.lt (Value.Float a) (Value.Float b) = (a < b))

let complex_mul_matches =
  Q.Test.make ~name:"numeric: complex multiplication is correct" ~count:300
    (Q.pair (Q.pair (Q.float_range (-100.) 100.) (Q.float_range (-100.) 100.))
       (Q.pair (Q.float_range (-100.) 100.) (Q.float_range (-100.) 100.)))
    (fun ((ar, ai), (br, bi)) ->
      match Numeric.mul (Value.Cpx (ar, ai)) (Value.Cpx (br, bi)) with
      | Value.Cpx (re, im) ->
          Float.equal re ((ar *. br) -. (ai *. bi)) && Float.equal im ((ar *. bi) +. (ai *. br))
      | _ -> false)

let suite =
  List.map to_alcotest
    [
      reader_roundtrip;
      value_roundtrip;
      quote_evaluates_to_itself;
      subtype_reflexive;
      subtype_top;
      subtype_transitive;
      join_upper_bound;
      serialization_roundtrip;
      hygiene_alpha;
      optimizer_preserves;
      contract_transparent;
      arrow_transparent;
      generic_add_matches_ocaml;
      complex_mul_matches;
    ]
