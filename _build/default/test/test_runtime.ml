(** Runtime tests: the numeric tower, value printing/equality, and
    primitives (safe and unsafe). *)

open Test_util

let tower =
  [
    t_ev "fixnum add" "(+ 1 2)" "3";
    t_ev "variadic add" "(+ 1 2 3 4)" "10";
    t_ev "add identity" "(+)" "0";
    t_ev "mul identity" "(*)" "1";
    t_ev "unary minus" "(- 5)" "-5";
    t_ev "unary div" "(/ 4)" "0.25";
    t_ev "mixed int float" "(+ 1 2.5)" "3.5";
    t_ev "float mul" "(* 1.5 2.0)" "3.0";
    t_ev "int div exact" "(/ 10 2)" "5";
    t_ev "int div inexact" "(/ 10 4)" "2.5";
    t_ev "float div" "(/ 1.0 8.0)" "0.125";
    t_ev "complex add" "(+ 1.0+2.0i 3.0+4.0i)" "4.0+6.0i";
    t_ev "complex mul" "(* 0.0+1.0i 0.0+1.0i)" "-1.0+0.0i";
    t_ev "complex div" "(/ 1.0+0.0i 0.0+1.0i)" "0.0-1.0i";
    t_ev "int plus complex" "(+ 1 1.0+1.0i)" "2.0+1.0i";
    t_ev "quotient" "(quotient 17 5)" "3";
    t_ev "remainder" "(remainder 17 5)" "2";
    t_ev "remainder negative" "(remainder -7 2)" "-1";
    t_ev "modulo negative" "(modulo -7 2)" "1";
    t_ev "modulo both negative" "(modulo -7 -2)" "-1";
    t_ev "gcd" "(gcd 12 18)" "6";
    t_ev "expt int" "(expt 2 10)" "1024";
    t_ev "expt float" "(expt 2.0 0.5)" (ev "(sqrt 2.0)");
    t_ev "abs" "(list (abs -3) (abs 3.5) (abs -3.5))" "(3 3.5 3.5)";
    t_ev "min max" "(list (min 3 1 2) (max 3 1 2) (min 1.5 2) (max 1 1.5))" "(1 3 1.5 1.5)";
    t_ev "add1 sub1" "(list (add1 1) (sub1 1) (add1 1.5))" "(2 0 2.5)";
    t_ev "sqrt perfect" "(sqrt 16)" "4";
    t_ev "sqrt imperfect" "(sqrt 2)" (ev "(sqrt 2.0)");
    t_ev "sqrt negative is complex" "(sqrt -4)" "0.0+2.0i";
    t_ev "sqrt negative float" "(sqrt -1.0)" "0.0+1.0i";
    t_ev "magnitude complex" "(magnitude 3.0+4.0i)" "5.0";
    t_ev "magnitude real" "(magnitude -7)" "7";
    t_ev "real-part" "(real-part 3.0+4.0i)" "3.0";
    t_ev "imag-part" "(imag-part 3.0+4.0i)" "4.0";
    t_ev "imag-part of int" "(imag-part 5)" "0";
    t_ev "make-rectangular" "(make-rectangular 1 2)" "1.0+2.0i";
    t_ev "make-polar" "(magnitude (make-polar 2.0 1.0))" "2.0";
    t_ev "exact->inexact" "(exact->inexact 3)" "3.0";
    t_ev "inexact->exact" "(inexact->exact 3.0)" "3";
    t_ev "floor ceiling" "(list (floor 2.5) (ceiling 2.5) (floor -2.5) (ceiling -2.5))"
      "(2.0 3.0 -3.0 -2.0)";
    t_ev "round is banker's" "(list (round 2.5) (round 3.5) (round 2.4))" "(2.0 4.0 2.0)";
    t_ev "truncate" "(list (truncate 2.7) (truncate -2.7))" "(2.0 -2.0)";
    t_ev "floor of int is int" "(floor 5)" "5";
    t_ev "zero?" "(list (zero? 0) (zero? 0.0) (zero? 1) (zero? 0.0+0.0i))" "(#t #t #f #t)";
    t_ev "even odd" "(list (even? 4) (odd? 4) (even? -3) (odd? -3))" "(#t #f #f #t)";
    t_ev "positive negative" "(list (positive? 2) (negative? 2) (negative? -2.5))" "(#t #f #t)";
    t_ev "comparison chain" "(list (< 1 2 3) (< 1 3 2) (<= 1 1 2) (> 3 2 1) (>= 2 2 1))"
      "(#t #f #t #t #t)";
    t_ev "numeric eq across tower" "(list (= 1 1.0) (= 1.0+0.0i 1) (= 1 2))" "(#t #t #f)";
    t_ev "atan two args" "(atan 1.0 1.0)" (ev "(atan 1.0 1.0)");
    t_ev "predicates" "(list (number? 1) (number? 'a) (integer? 2.0) (integer? 2.5)
                             (exact-integer? 2.0) (flonum? 2.0) (real? 1.0+2.0i) (complex? 1))"
      "(#t #f #t #f #f #t #f #t)";
  ]

let tower_errors =
  [
    t_ev_err "add non-number" "(+ 1 'a)" "expects a number";
    t_ev_err "division by zero" "(/ 1 0)" "division by zero";
    t_ev_err "quotient by zero" "(quotient 1 0)" "division by zero";
    t_ev_err "compare complex" "(< 1.0+2.0i 3)" "expects real";
    t_ev_err "even? on float" "(even? 2.5)" "even?";
    t_ev_err "inexact->exact non-integral" "(inexact->exact 2.5)" "no exact rationals";
  ]

let unsafe =
  [
    t_ev "unsafe-fl+" "(unsafe-fl+ 1.5 2.25)" "3.75";
    t_ev "unsafe-fl nest" "(unsafe-fl* (unsafe-fl+ 1.0 2.0) (unsafe-fl- 5.0 1.0))" "12.0";
    t_ev "unsafe-fl/" "(unsafe-fl/ 1.0 4.0)" "0.25";
    t_ev "unsafe comparisons"
      "(list (unsafe-fl< 1.0 2.0) (unsafe-fl> 1.0 2.0) (unsafe-fl<= 2.0 2.0) (unsafe-fl>= 2.0 3.0) (unsafe-fl= 2.0 2.0))"
      "(#t #f #t #f #t)";
    t_ev "unsafe-flsqrt" "(unsafe-flsqrt 9.0)" "3.0";
    t_ev "unsafe-flabs" "(unsafe-flabs -2.5)" "2.5";
    t_ev "unsafe-flmin/max" "(list (unsafe-flmin 1.0 2.0) (unsafe-flmax 1.0 2.0))" "(1.0 2.0)";
    t_ev "unsafe-flfloor" "(unsafe-flfloor 2.7)" "2.0";
    t_ev "unsafe-fx ops" "(list (unsafe-fx+ 2 3) (unsafe-fx* 2 3) (unsafe-fx< 2 3))" "(5 6 #t)";
    t_ev "unsafe-fx->fl" "(unsafe-fx->fl 7)" "7.0";
    t_ev "unsafe-c+" "(unsafe-c+ 1.0+2.0i 3.0+4.0i)" "4.0+6.0i";
    t_ev "unsafe-c*" "(unsafe-c* 0.0+1.0i 0.0+1.0i)" "-1.0+0.0i";
    t_ev "unsafe-c/ agrees with /" "(unsafe-c/ 5.0+3.0i 2.0-1.0i)" (ev "(/ 5.0+3.0i 2.0-1.0i)");
    t_ev "unsafe-magnitude" "(unsafe-magnitude 3.0+4.0i)" "5.0";
    t_ev "unsafe-real/imag-part"
      "(list (unsafe-real-part 1.0+2.0i) (unsafe-imag-part 1.0+2.0i))" "(1.0 2.0)";
    t_ev "unsafe-make-rectangular" "(unsafe-make-rectangular 1.0 2.0)" "1.0+2.0i";
    t_ev "unsafe-car/cdr" "(list (unsafe-car '(1 2)) (unsafe-cdr '(1 2)))" "(1 (2))";
    t_ev "unsafe-vector ops"
      "(let ([v (vector 1 2 3)]) (unsafe-vector-set! v 0 9) (list (unsafe-vector-ref v 0) (unsafe-vector-length v)))"
      "(9 3)";
    t_ev "unsafe coerces int leaves" "(unsafe-fl+ 1 2.5)" "3.5";
    t_ev_err "unsafe-car off-type raises (not UB)" "(unsafe-car 5)" "unsafe-car";
    t_ev_err "unsafe-fl off-type raises" "(unsafe-fl+ \"x\" 1.0)" "unsafe";
  ]

let lists =
  [
    t_ev "cons car cdr" "(let ([p (cons 1 2)]) (list (car p) (cdr p)))" "(1 2)";
    t_ev "list" "(list 1 2 3)" "(1 2 3)";
    t_ev "list*" "(list* 1 2 '(3 4))" "(1 2 3 4)";
    t_ev "caar etc" "(list (cadr '(1 2 3)) (caddr '(1 2 3)) (cddr '(1 2 3)) (caar '((9))))"
      "(2 3 (3) 9)";
    t_ev "first second third rest" "(list (first '(1 2 3)) (second '(1 2 3)) (third '(1 2 3)) (rest '(1 2 3)))"
      "(1 2 3 (2 3))";
    t_ev "length" "(length '(a b c))" "3";
    t_ev "length empty" "(length '())" "0";
    t_ev "append" "(append '(1 2) '(3) '() '(4 5))" "(1 2 3 4 5)";
    t_ev "append single improper tail" "(append '(1) 2)" "(1 . 2)";
    t_ev "reverse" "(reverse '(1 2 3))" "(3 2 1)";
    t_ev "list-ref" "(list-ref '(a b c) 1)" "b";
    t_ev "list-tail" "(list-tail '(a b c d) 2)" "(c d)";
    t_ev "member found" "(member 2 '(1 2 3))" "(2 3)";
    t_ev "member missing" "(member 9 '(1 2 3))" "#f";
    t_ev "member structural" "(member '(a) '((a) (b)))" "((a) (b))";
    t_ev "memq symbols" "(memq 'b '(a b c))" "(b c)";
    t_ev "memv numbers" "(memv 2 '(1 2 3))" "(2 3)";
    t_ev "assoc" "(assoc 'b '((a 1) (b 2)))" "(b 2)";
    t_ev "assq missing" "(assq 'z '((a 1)))" "#f";
    t_ev "last" "(last '(1 2 3))" "3";
    t_ev "set-car!" "(let ([p (cons 1 2)]) (set-car! p 9) p)" "(9 . 2)";
    t_ev "set-cdr!" "(let ([p (cons 1 2)]) (set-cdr! p '(3)) p)" "(1 3)";
    t_ev "pair predicates" "(list (pair? '(1)) (pair? '()) (null? '()) (null? '(1)) (list? '(1 2)) (list? '(1 . 2)))"
      "(#t #f #t #f #t #f)";
    t_ev_err "car of empty" "(car '())" "expects a pair";
    t_ev_err "length of improper" "(length '(1 . 2))" "proper list";
  ]

let higher_order =
  [
    t_ev "map" "(map add1 '(1 2 3))" "(2 3 4)";
    t_ev "map2" "(map + '(1 2) '(10 20))" "(11 22)";
    t_ev "for-each order" "(let ([acc '()]) (for-each (lambda (x) (set! acc (cons x acc))) '(1 2 3)) acc)"
      "(3 2 1)";
    t_ev "filter" "(filter even? '(1 2 3 4 5 6))" "(2 4 6)";
    t_ev "foldl" "(foldl cons '() '(1 2 3))" "(3 2 1)";
    t_ev "foldr" "(foldr cons '() '(1 2 3))" "(1 2 3)";
    t_ev "foldl subtract order" "(foldl - 0 '(1 2 3))" "2";
    t_ev "andmap" "(list (andmap even? '(2 4)) (andmap even? '(2 3)) (andmap even? '()))" "(#t #f #t)";
    t_ev "ormap" "(list (ormap even? '(1 3)) (ormap even? '(1 2)))" "(#f #t)";
    t_ev "sort" "(sort '(3 1 4 1 5 9 2 6) <)" "(1 1 2 3 4 5 6 9)";
    t_ev "sort stable" "(sort '((1 a) (0 b) (1 c)) (lambda (x y) (< (car x) (car y))))"
      "((0 b) (1 a) (1 c))";
    t_ev "build-list" "(build-list 5 (lambda (i) (* i i)))" "(0 1 4 9 16)";
    t_ev "apply" "(apply + '(1 2 3))" "6";
    t_ev "apply mixed" "(apply list 1 2 '(3 4))" "(1 2 3 4)";
    t_ev "values single" "(values 42)" "42";
    t_ev "call-with-values" "(call-with-values (lambda () (values 1 2 3)) list)" "(1 2 3)";
    t_ev "call-with-values single" "(call-with-values (lambda () 7) add1)" "8";
    t_ev "procedure?" "(list (procedure? car) (procedure? (lambda (x) x)) (procedure? 5))"
      "(#t #t #f)";
  ]

let vectors_strings =
  [
    t_ev "vector literal" "(vector 1 2 3)" "#(1 2 3)";
    t_ev "make-vector" "(make-vector 3 'x)" "#(x x x)";
    t_ev "make-vector default" "(make-vector 2)" "#(0 0)";
    t_ev "vector-ref/set" "(let ([v (vector 1 2)]) (vector-set! v 1 9) (vector-ref v 1))" "9";
    t_ev "vector-length" "(vector-length (vector 1 2 3))" "3";
    t_ev "vector<->list" "(list (vector->list #(1 2)) (list->vector '(3 4)))" "((1 2) #(3 4))";
    t_ev "vector-fill!" "(let ([v (make-vector 3 0)]) (vector-fill! v 7) v)" "#(7 7 7)";
    t_ev "vector-map" "(vector-map add1 #(1 2))" "#(2 3)";
    t_ev "build-vector" "(build-vector 3 (lambda (i) (* 2 i)))" "#(0 2 4)";
    t_ev "vector-copy is fresh" "(let* ([v (vector 1)] [w (vector-copy v)]) (vector-set! w 0 9) (list v w))"
      "(#(1) #(9))";
    t_ev_err "vector-ref out of range" "(vector-ref (vector 1) 5)" "out of range";
    t_ev_err "vector-ref negative" "(vector-ref (vector 1) -1)" "out of range";
    t_ev "string-length" "(string-length \"hello\")" "5";
    t_ev "string-ref" "(string-ref \"abc\" 1)" "#\\b";
    t_ev "substring" "(list (substring \"hello\" 1 3) (substring \"hello\" 2))" "(\"el\" \"llo\")";
    t_ev "string-append" "(string-append \"a\" \"b\" \"c\")" "\"abc\"";
    t_ev "string mutation" "(let ([s (make-string 3 #\\a)]) (string-set! s 1 #\\b) s)" "\"aba\"";
    t_ev "string<->symbol" "(list (string->symbol \"hi\") (symbol->string 'hi))" "(hi \"hi\")";
    t_ev "string<->list" "(list (string->list \"ab\") (list->string '(#\\c #\\d)))"
      "((#\\a #\\b) \"cd\")";
    t_ev "string case" "(list (string-upcase \"aBc\") (string-downcase \"aBc\"))" "(\"ABC\" \"abc\")";
    t_ev "string=? and <?" "(list (string=? \"a\" \"a\") (string<? \"a\" \"b\") (string<? \"b\" \"a\"))"
      "(#t #t #f)";
    t_ev "string->number" "(list (string->number \"42\") (string->number \"2.5\") (string->number \"nope\"))"
      "(42 2.5 #f)";
    t_ev "number->string" "(list (number->string 42) (number->string 2.5))" "(\"42\" \"2.5\")";
    t_ev "char ops" "(list (char->integer #\\A) (integer->char 97) (char=? #\\a #\\a) (char<? #\\a #\\b))"
      "(65 #\\a #t #t)";
    t_ev "char classes" "(list (char-alphabetic? #\\a) (char-alphabetic? #\\1) (char-numeric? #\\7))"
      "(#t #f #t)";
    t_ev "gensym distinct" "(eq? (gensym) (gensym))" "#f";
  ]

let equality_misc =
  [
    t_ev "eq? on symbols" "(eq? 'a 'a)" "#t";
    t_ev "eq? on fixnums" "(eq? 400 400)" "#t";
    t_ev "eqv? on floats" "(eqv? 1.5 1.5)" "#t";
    t_ev "eq? on fresh pairs" "(eq? (cons 1 2) (cons 1 2))" "#f";
    t_ev "eq? same pair" "(let ([p (cons 1 2)]) (eq? p p))" "#t";
    t_ev "equal? structural" "(equal? '(1 (2 #(3))) '(1 (2 #(3))))" "#t";
    t_ev "equal? strings" "(equal? \"ab\" \"ab\")" "#t";
    t_ev "equal? different" "(equal? '(1 2) '(1 3))" "#f";
    t_ev "not" "(list (not #f) (not 0) (not '()))" "(#t #f #f)";
    t_ev "truthiness" "(list (if 0 'y 'n) (if \"\" 'y 'n) (if '() 'y 'n) (if #f 'y 'n))" "(y y y n)";
    t_ev "boolean?" "(list (boolean? #t) (boolean? 0))" "(#t #f)";
    t_ev "void" "(void? (void))" "#t";
    t_ev "box" "(let ([b (box 1)]) (set-box! b 2) (list (unbox b) (box? b)))" "(2 #t)";
    t_ev "identity" "(identity 'x)" "x";
    t_ev "hash" "(let ([h (make-hash)]) (hash-set! h 'a 1) (list (hash-ref h 'a) (hash-ref h 'b 0) (hash-has-key? h 'a) (hash-count h)))"
      "(1 0 #t 1)";
    t_ev_err "hash-ref missing" "(hash-ref (make-hash) 'k)" "no value found";
    t_ev_err "error primitive" "(error \"boom\" 42)" "boom 42";
    t_ev "format" "(format \"~a+~s=~a~~\" 1 \"x\" 'y)" "\"1+\\\"x\\\"=y~\"";
    t_ev_err "format too few args" "(format \"~a ~a\" 1)" "too few";
    t_ev_err "format too many args" "(format \"~a\" 1 2)" "too many";
  ]

let suite =
  tower @ tower_errors @ unsafe @ lists @ higher_order @ vectors_strings @ equality_misc
