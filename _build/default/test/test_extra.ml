(** Second coverage batch: multiple values, deep environments, module edge
    cases, typed edge cases, cross-module define-type, lazy/limited
    interactions, and error-message quality. *)

open Test_util

let multiple_values =
  [
    t_ev "let-values destructures" "(let-values ([(a b) (values 1 2)]) (+ a b))" "3";
    t_ev "let-values several clauses" "(let-values ([(a b) (values 1 2)] [(c) 3]) (list a b c))"
      "(1 2 3)";
    t_ev "letrec-values" "(letrec-values ([(f g) (values (lambda (n) (if (= n 0) 'f (g (- n 1)))) (lambda (n) (f n)))]) (f 3))"
      "f";
    t_ev_err "too many values for context" "(let-values ([(a) (values 1 2)]) a)" "expected 1 value";
    t_ev_err "too few values" "(let-values ([(a b c) (values 1 2)]) a)" "expected 3 values";
    t_run "module-level define-values with multiple values"
      "#lang racket\n(define-values (a b c) (values 1 2 3))\n(display (list c b a))" "(3 2 1)";
    t_err "module-level define-values arity mismatch"
      "#lang racket\n(define-values (a b) (values 1 2 3))\n(display a)" "expected 2 values";
  ]

let environments =
  [
    t_ev "deep lexical nesting (depth > 3)"
      "(let ([a 1]) (let ([b 2]) (let ([c 3]) (let ([d 4]) (let ([e 5]) (+ a (+ b (+ c (+ d e)))))))))"
      "15";
    t_ev "deep float nesting exercises LD leaves"
      "(let ([a 1.0]) (let ([b 2.0]) (let ([c 3.0]) (let ([d 4.0]) (unsafe-fl+ a (unsafe-fl* b (unsafe-fl- c d)))))))"
      "-1.0";
    t_ev "zero-argument lambda" "((lambda () 'thunk))" "thunk";
    t_ev "six arguments (generic apply path)"
      "((lambda (a b c d e f) (list f e d c b a)) 1 2 3 4 5 6)" "(6 5 4 3 2 1)";
    t_ev "seven arguments" "((lambda (a b c d e f g) g) 1 2 3 4 5 6 7)" "7";
    t_ev "closure over loop variable snapshots by frame"
      "(let loop ([i 0] [fs '()]) (if (= i 3) (map (lambda (f) (f)) (reverse fs)) (loop (+ i 1) (cons (lambda () i) fs))))"
      "(0 1 2)";
    t_ev "letrec with non-lambda rhs evaluates in order"
      "(letrec ([a 1] [b (+ a 1)]) (list a b))" "(1 2)";
    t_ev "mutation through deep frames"
      "(let ([x 0]) (let ([f (lambda () (let ([y 1]) (let ([z 2]) (set! x (+ y z)))))]) (f) x))"
      "3";
  ]

let module_edges =
  [
    Alcotest.test_case "requiring a module that requires its requirer fails cleanly" `Quick
      (fun () ->
        (* modules compile in declaration order, so a forward reference is an
           unknown module, not a hang *)
        let m = fresh "cyc" in
        let msg =
          run_err (Printf.sprintf "#lang racket\n(require %s-not-yet)\n(display 1)" m)
        in
        check_b "unknown" true (contains msg "unknown module"));
    Alcotest.test_case "redeclaring a module replaces it for new clients" `Quick (fun () ->
        let srv = fresh "redecl" in
        declare ~name:srv "#lang racket\n(provide v)\n(define v 1)";
        check_s "old" "1" (run (Printf.sprintf "#lang racket\n(require %s)\n(display v)" srv));
        declare ~name:srv "#lang racket\n(provide v)\n(define v 2)";
        check_s "new" "2" (run (Printf.sprintf "#lang racket\n(require %s)\n(display v)" srv)));
    Alcotest.test_case "two provides of the same binding" `Quick (fun () ->
        let srv = fresh "dualprov" in
        declare ~name:srv
          "#lang racket\n(provide f)\n(provide (rename-out [f g]))\n(define (f x) (* x 10))";
        check_s "both names" "(10 20)"
          (run (Printf.sprintf "#lang racket\n(require %s)\n(display (list (f 1) (g 2)))" srv)));
    Alcotest.test_case "require inside begin splices" `Quick (fun () ->
        let srv = fresh "breq" in
        declare ~name:srv "#lang racket\n(provide v)\n(define v 7)";
        check_s "works" "7"
          (run (Printf.sprintf "#lang racket\n(begin (require %s))\n(display v)" srv)));
    Alcotest.test_case "macro-generated require" `Quick (fun () ->
        let srv = fresh "mreq" in
        declare ~name:srv "#lang racket\n(provide v)\n(define v 'via-macro)";
        check_s "works" "via-macro"
          (run
             (Printf.sprintf
                "#lang racket\n(define-syntax-rule (pull m) (require m))\n(pull %s)\n(display v)"
                srv)));
  ]

let typed_edges =
  [
    t_err "empty union type" "#lang typed/racket\n(define x : (U) 1)" "empty union";
    t_run "Void-typed define"
      "#lang typed/racket\n(define (shout) : Void (display 'hi))\n(shout)" "hi";
    t_run "ann in operator position"
      "#lang typed/racket\n(display ((ann add1 (Integer -> Integer)) 1))" "2";
    t_run "nested function types"
      "#lang typed/racket\n(: compose2 ((Integer -> Integer) (Integer -> Integer) -> (Integer -> Integer)))\n(define (compose2 f g) (lambda (x) (f (g x))))\n(display ((compose2 add1 add1) 40))"
      "42";
    t_run "typed module with zero provides"
      "#lang typed/racket\n(define x : Integer 1)\n(display x)" "1";
    t_err "type error reports source location"
      "#lang typed/racket\n(define bad : Integer \"str\")" ":2:";
    Alcotest.test_case "define-type persists across modules (§5)" `Quick (fun () ->
        let srv = fresh "dt-srv" in
        declare ~name:srv
          (Printf.sprintf
             "#lang typed/racket\n(define-type MyPair%s (Pairof Integer Integer))\n(: mk (Integer -> MyPair%s))\n(define (mk n) (cons n n))\n(provide mk)"
             srv srv);
        check_s "client uses the named type" "(3 . 3)"
          (run
             (Printf.sprintf
                "#lang typed/racket\n(require %s)\n(define p : MyPair%s (mk 3))\n(display p)" srv
                srv)));
    t_run "higher-order typed export used from typed client"
      "#lang typed/racket\n(: twice ((Integer -> Integer) Integer -> Integer))\n(define (twice f x) (f (f x)))\n(display (twice (lambda ([n : Integer]) (* n 3)) 2))"
      "18";
    Alcotest.test_case "higher-order contract across the boundary" `Quick (fun () ->
        let srv = fresh "ho-srv" in
        declare ~name:srv
          "#lang typed/racket\n(: twice ((Integer -> Integer) Integer -> Integer))\n(define (twice f x) (f (f x)))\n(provide twice)";
        check_s "untyped caller passes a function" "9"
          (run (Printf.sprintf "#lang racket\n(require %s)\n(display (twice add1 7))" srv));
        let msg =
          run_err
            (Printf.sprintf
               "#lang racket\n(require %s)\n(display (twice (lambda (n) \"not int\") 7))" srv)
        in
        check_b "bad callback caught by contract" true (contains msg "contract"));
    t_run "typed code may shadow a primitive"
      "#lang typed/racket\n(define (add1 [x : Integer]) : Integer (+ x 100))\n(display (add1 1))"
      "101";
    t_run "string operations typed end to end"
      "#lang typed/racket\n(define (shout [s : String]) : String (string-append (string-upcase s) \"!\"))\n(display (shout \"hey\"))"
      "HEY!";
    t_run "char and symbol types"
      "#lang typed/racket\n(define c : Char #\\a)\n(define s : Symbol 'sym)\n(display (list (char->integer c) (symbol->string s)))"
      "(97 sym)";
  ]

let lazy_and_limited =
  [
    t_run "lazy with typed-style workload (untyped lazy)"
      "#lang lazy\n(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))\n(display (fib 10))"
      "55";
    t_run "lazy map forces lazily through prim"
      "#lang lazy\n(display (map add1 (list 1 2 3)))" "(2 3 4)";
    t_run "limited language supports recursion"
      "#lang limited\n(define (len l) (if (null? l) 0 (+ 1 (len (cdr l)))))\n(display (len (list 1 2 3)))"
      "3";
  ]

let error_quality =
  [
    t_ev_err "arity error names the function"
      "(letrec ([my-fn (lambda (a b) a)]) (my-fn 1))" "my-fn";
    t_ev_err "car error shows the value" "(car 42)" "42";
    t_err "unbound identifier error names it" "#lang racket\n(display undefined-xyz)" "undefined-xyz";
    t_err "syntax error shows the macro name"
      "#lang racket\n(define-syntax-rule (pair a b) (cons a b))\n(pair 1)" "no matching";
    Alcotest.test_case "type error message format matches the paper's" `Quick (fun () ->
        (* paper §4.1: "typecheck: wrong type in: 3.7" *)
        let msg = run_err "#lang typed/racket\n(define w : Integer 3.7)" in
        check_b "typecheck:" true (contains msg "typecheck:");
        check_b "wrong type" true (contains msg "wrong type");
        check_b "in: 3.7" true (contains msg "3.7"));
  ]

let quasiquote_extra =
  [
    t_ev "nested quasiquote levels" "`(1 `(2 ,(+ 1 2)))" "(1 `(2 ,(+ 1 2)))";
    t_ev "unquote under two levels stays quoted" "`(a `(b ,(c)))" "(a `(b ,(c)))";
    t_ev "double unquote escapes" "(let ([x 5]) `(a `(b ,,x)))" "(a `(b ,5))";
    t_ev "splicing into middle" "`(1 ,@(list 2 3) 4)" "(1 2 3 4)";
    t_ev "splicing at end" "`(1 ,@(list 2 3))" "(1 2 3)";
    t_ev "vector quasiquote" "`#(1 ,(+ 1 1) 3)" "#(1 2 3)";
    t_ev "improper tail" "`(1 . ,(+ 1 1))" "(1 . 2)";
    t_ev "empty quasiquote" "`()" "()";
  ]

let match_extra =
  [
    t_ev "match literal" "(match 5 [5 'five] [_ 'other])" "five";
    t_ev "match string literal" "(match \"hi\" [\"hi\" 'greeting] [_ 'other])" "greeting";
    t_ev "match quoted symbol" "(match 'red ['blue 1] ['red 2])" "2";
    t_ev "match wildcard" "(match 99 [_ 'anything])" "anything";
    t_ev "match vector" "(match (vector 1 2) [(vector a b) (+ a b)])" "3";
    t_ev "match vector wrong length falls through" "(match (vector 1) [(vector a b) 'two] [_ 'no])"
      "no";
    t_ev "match predicate" "(match 4 [(? even?) 'even] [_ 'odd])" "even";
    t_ev "match predicate with subpattern" "(match 4 [(? even? n) (* n 10)])" "40";
    t_ev "match nested" "(match '(1 (2 3)) [(list a (list b c)) (list c b a)])" "(3 2 1)";
    t_ev "match cons chains" "(match '(1 2 3) [(cons a (cons b _)) (+ a b)])" "3";
    t_ev "first clause wins" "(match 1 [x 'var] [1 'lit])" "var";
    t_ev_err "no clause matches" "(match 5 [6 'six])" "no matching clause";
  ]

let suite =
  multiple_values @ environments @ module_edges @ typed_edges @ lazy_and_limited @ error_quality
  @ quasiquote_extra @ match_extra

let comprehensions =
  [
    t_ev "for/list over in-range" "(for/list ([i (in-range 4)]) (* i i))" "(0 1 4 9)";
    t_ev "for/list over in-range with bounds" "(for/list ([i (in-range 2 5)]) i)" "(2 3 4)";
    t_ev "for/list over in-list" "(for/list ([x (in-list '(a b))]) (list x x))" "((a a) (b b))";
    t_ev "for/sum" "(for/sum ([i (in-range 5)]) i)" "10";
    t_ev "for/sum over list" "(for/sum ([x (in-list '(1 2 3))]) (* x 10))" "60";
    t_run "typed let* with annotations"
      "#lang typed/racket\n(display (let* ([x : Float 2.0] [y : Float (* x x)]) (+ x y)))" "6.0";
    t_run "typed let* mixes annotated and inferred"
      "#lang typed/racket\n(display (let* ([x 3] [y : Integer (+ x 1)]) (* x y)))" "12";
    t_run "typed for/list"
      "#lang typed/racket\n(display (for/list ([x (in-list (list 1 2 3))]) (* x x)))" "(1 4 9)";
  ]

let suite = suite @ comprehensions

let library_depth =
  [
    t_ev "take" "(take '(1 2 3 4) 2)" "(1 2)";
    t_ev "take zero" "(take '(1) 0)" "()";
    t_ev_err "take too many" "(take '(1) 5)" "too short";
    t_ev "drop" "(drop '(1 2 3 4) 2)" "(3 4)";
    t_ev "remove first occurrence" "(remove 2 '(1 2 3 2))" "(1 3 2)";
    t_ev "remove missing" "(remove 9 '(1 2))" "(1 2)";
    t_ev "count" "(count even? '(1 2 3 4 5 6))" "3";
    t_ev "flatten" "(flatten '(1 (2 (3 4)) 5))" "(1 2 3 4 5)";
    t_ev "range" "(range 4)" "(0 1 2 3)";
    t_ev "range bounds" "(range 2 5)" "(2 3 4)";
    t_ev "range empty" "(range 5 2)" "()";
    t_ev "last-pair" "(last-pair '(1 2 3))" "(3)";
    t_ev "string-contains?" "(list (string-contains? \"hello\" \"ell\") (string-contains? \"hello\" \"z\"))"
      "(#t #f)";
    t_ev "string-split" "(string-split \"a,b,,c\" \",\")" "(\"a\" \"b\" \"c\")";
    t_ev "string-join" "(string-join '(\"a\" \"b\" \"c\") \"-\")" "\"a-b-c\"";
    t_ev "with-output-to-string" "(with-output-to-string (lambda () (display 'inner)))" "\"inner\"";
    t_run "time macro prints and returns"
      "#lang racket\n(define r (with-output-to-string (lambda () (display (time (+ 20 22))))))\n(display (string-contains? r \"cpu time\"))(display \" \")(display (string-contains? r \"42\"))"
      "#t #t";
    t_run "typed take/drop/count"
      "#lang typed/racket\n(define l : (Listof Integer) (range 10))\n(display (list (take l 3) (drop l 7) (count even? l)))"
      "((0 1 2) (7 8 9) 5)";
    t_run "typed string-split/join round trip"
      "#lang typed/racket\n(display (string-join (string-split \"x y z\" \" \") \"+\"))" "x+y+z";
  ]

let suite = suite @ library_depth
