(** Typechecker tests (paper §4): positive programs that must check,
    negative programs with the error the checker must produce, annotation
    forms, inference, and the extended-language story (macros reduce to
    core forms before checking). *)

open Test_util

(* shorthand: a typed program expected to print [expect] *)
let tp name body expect = t_run name ("#lang typed/racket\n" ^ body) expect

(* a typed program expected to fail with a type error containing [frag] *)
let te name body frag = t_err name ("#lang typed/racket\n" ^ body) frag

let annotations =
  [
    tp "define with colon" "(define x : Integer 3)\n(display (+ x 4))" "7";
    tp "define: alias (§3.1)" "(define: y : Integer 5)\n(display y)" "5";
    tp "define without annotation infers" "(define z 3.5)\n(display (flonum? z))" "#t";
    tp "function definition with annotations"
      "(define (f [z : Integer]) : Integer (* 2 z))\n(display (f 21))" "42";
    tp "separate (: id T) declaration (§4.4)"
      "(: f (Number -> Number))\n(define (f z) (* 2 z))\n(display (f 7))" "14";
    tp "declaration after the define also works"
      "(define (g z) (* 3 z))\n(: g (Integer -> Integer))\n(display (g 5))" "15";
    tp "curried colon shorthand" "(: h : Integer -> Integer)\n(define (h x) (+ x 1))\n(display (h 1))"
      "2";
    tp "annotated lambda" "(display ((lambda ([x : Float]) (* x x)) 3.0))" "9.0";
    tp "lambda infers from expected type"
      "(: apply1 ((Integer -> Integer) -> Integer))\n(define (apply1 f) (f 10))\n(display (apply1 (lambda (x) (+ x 1))))"
      "11";
    tp "ann ascribes" "(display (ann 3 Real))" "3";
    tp "ann widens" "(define x (ann 3 Number))\n(display x)" "3";
    te "ann rejects wrong type" "(display (ann 3.5 Integer))" "wrong type";
    tp "let with annotated clause" "(display (let ([x : Float 2.0]) (* x x)))" "4.0";
    tp "let infers unannotated clause" "(display (let ([x 2.0]) (flonum? x)))" "#t";
    tp "let: named with return type"
      "(display (let loop : Integer ([i : Integer 0]) (if (= i 3) i (loop (+ i 1)))))" "3";
    te "missing lambda annotation" "(display ((lambda (x) x) 1))" "missing type annotation";
    te "rest args rejected" "(define (f . xs) xs)" "rest arguments";
  ]

let checking =
  [
    te "paper's example: 3.7 is not an Integer" "(define w : Integer 3.7)" "wrong type";
    te "argument type error" "(define (f [x : Integer]) : Integer x)\n(f \"hi\")" "wrong type";
    te "arity error" "(define (f [x : Integer]) : Integer x)\n(f 1 2)" "wrong number of arguments";
    te "body doesn't match return type" "(define (f [x : Integer]) : Float x)" "wrong type";
    te "applying a non-function" "(define x : Integer 3)\n(x 1)" "not a function type";
    te "untyped variable (fig. 3)" "(define-syntax-rule (hide e) e)\n(display (hide nonexistent))"
      "unbound";
    te "if branches join then mismatch"
      "(define b : Boolean #t)\n(define x : Integer (if b 1 2.5))" "wrong type";
    tp "if branches join to Real"
      "(define b : Boolean #t)\n(define x : Real (if b 1 2.5))\n(display x)" "1";
    te "set! respects variable type" "(define x : Integer 1)\n(set! x 2.5)" "wrong type";
    tp "set! accepts subtype" "(define x : Real 1)\n(set! x 2.5)\n(display x)" "2.5";
    tp "recursion through annotation"
      "(: fact (Integer -> Integer))\n(define (fact n) (if (= n 0) 1 (* n (fact (- n 1)))))\n(display (fact 5))"
      "120";
    tp "mutual recursion (two-pass, §4.4)"
      "(: ev? (Integer -> Boolean))\n(: od? (Integer -> Boolean))\n(define (ev? n) (if (= n 0) #t (od? (- n 1))))\n(define (od? n) (if (= n 0) #f (ev? (- n 1))))\n(display (ev? 10))"
      "#t";
    tp "forward reference to annotated define"
      "(define (f) : Integer (g))\n(define (g) : Integer 42)\n(display (f))" "42";
    te "quotient needs integers" "(display (quotient 7.0 2))" "wrong type";
    te "string-length of number" "(string-length 42)" "wrong type";
    tp "higher-order primitive fallback" "(display (sort (list 3 1 2) <))" "(1 2 3)";
    tp "map with annotated lambda" "(display (map (lambda ([x : Integer]) (* x x)) (list 1 2 3)))"
      "(1 4 9)";
    te "map function/element mismatch"
      "(display (map (lambda ([x : String]) x) (list 1 2)))" "wrong type";
    tp "vectors are invariant but usable"
      "(define v : (Vectorof Integer) (vector 1 2 3))\n(vector-set! v 0 9)\n(display (vector-ref v 0))"
      "9";
    te "vector-set! wrong element type"
      "(define v : (Vectorof Integer) (vector 1 2))\n(vector-set! v 0 \"s\")" "vector-set!";
    tp "list type grows by join" "(define l : (Listof Real) (cons 1 (cons 2.5 '())))\n(display l)"
      "(1 2.5)";
    te "car of empty-typed" "(display (car '()))" "expects a pair";
    tp "begin types as last" "(define x : Integer (begin (void) 5))\n(display x)" "5";
  ]

let numeric_rules =
  [
    tp "int ops give Integer" "(define x : Integer (+ 1 (* 2 3)))\n(display x)" "7";
    tp "float ops give Float" "(define x : Float (+ 1.0 (* 2.0 3.0)))\n(display x)" "7.0";
    tp "mixed gives Float" "(define x : Float (+ 1 2.5))\n(display x)" "3.5";
    tp "division of integers is Real, not Integer"
      "(define x : Real (/ 10 4))\n(display x)" "2.5";
    te "division of integers is not Integer" "(define x : Integer (/ 10 4))" "wrong type";
    tp "complex arithmetic" "(define z : Float-Complex (* 1.0+1.0i 2.0+0.0i))\n(display z)"
      "2.0+2.0i";
    tp "magnitude of complex is Float"
      "(define m : Float (magnitude 3.0+4.0i))\n(display m)" "5.0";
    tp "real-part of complex is Float"
      "(display (+ (real-part 1.5+2.0i) (imag-part 1.5+2.0i)))" "3.5";
    tp "make-rectangular is Float-Complex"
      "(define z : Float-Complex (make-rectangular 1.0 2.0))\n(display z)" "1.0+2.0i";
    tp "comparisons are Boolean" "(define b : Boolean (< 1 2.5))\n(display b)" "#t";
    te "comparison of complex rejected" "(display (< 1.0+2.0i 3))" "expects real";
    tp "exact->inexact" "(define f : Float (exact->inexact 3))\n(display f)" "3.0";
    tp "sqrt on Float stays Float (documented simplification)"
      "(define r : Float (sqrt 2.0))\n(display (flonum? r))" "#t";
    tp "quotient remainder modulo" "(display (list (quotient 7 2) (remainder 7 2) (modulo -7 2)))"
      "(3 1 1)";
  ]

let extended_language =
  [
    (* §3.2: "checking an extended language" — these all go through macros
       that the checker never heard of; local-expand reduces them to core *)
    tp "match is checkable (paper example)"
      "(display (match (list 1 2 3) [(list x y z) (+ x y z)]))" "6";
    tp "cond through macro" "(display (cond [(= 1 2) 'a] [(= 1 1) 'b] [else 'c]))" "b";
    tp "named let through macro"
      "(display (let loop : Integer ([i : Integer 0] [acc : Integer 0]) (if (= i 10) acc (loop (+ i 1) (+ acc i)))))"
      "45";
    tp "user syntax-rules macro in typed code"
      "(define-syntax-rule (twice e) (+ e e))\n(display (twice 21))" "42";
    tp "user macro producing annotated binder"
      "(define-syntax-rule (deffloat n v) (define n : Float v))\n(deffloat pi-ish 3.14)\n(display pi-ish)"
      "3.14";
    te "macro-hidden type errors are still caught"
      "(define-syntax-rule (sneaky) (+ 1 \"two\"))\n(display (sneaky))" "expects numbers";
    tp "for-each and begin" "(for-each display (list 1 2 3))" "123";
    tp "when/unless type as Void-ish"
      "(define (f [b : Boolean]) : Void (when b (display 'yes)))\n(f #t)" "yes";
  ]

let dynamic_any =
  [
    tp "Any-typed values flow dynamically"
      "(define (f [x : Any]) : Integer (+ (car x) 1))\n(display (f (list 41)))" "42";
    tp "Any as tree node type (binarytrees pattern)"
      "(define (mk [d : Integer]) : Any (if (= d 0) 7 (cons (mk (- d 1)) (mk (- d 1)))))\n(define (sum [t : Any]) : Integer (if (pair? t) (+ (sum (car t)) (sum (cdr t))) t))\n(display (sum (mk 3)))"
      "56";
    tp "optimizer never fires on Any"
      "(define (f [x : Any] [y : Any]) : Any (* x y))\n(display (f 2.0+1.0i 2.0))" "4.0+2.0i";
  ]

let suite = annotations @ checking @ numeric_rules @ extended_language @ dynamic_any
