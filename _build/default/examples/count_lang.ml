(** The paper's §2.3 example: the [count] language.

    A language is a library providing (a) a set of bindings and (b) a
    [#%module-begin] that implements whole-module semantics.  [count]
    reuses all of [racket] but wraps the module so that it first prints how
    many top-level expressions the program contains.

    The paper's example program:

    {v
    #lang count
    (printf "*~a" (+ 1 2))
    (printf "*~a" (- 4 3))
    v}

    prints [Found 2 expressions.*3*1].

    Run with: dune exec examples/count_lang.exe *)

open Liblang_core.Core

let () =
  init ();
  print_endline "The paper's count program:";
  print_endline "  #lang count";
  print_endline "  (printf \"*~a\" (+ 1 2))";
  print_endline "  (printf \"*~a\" (- 4 3))";
  print_endline "";
  let out = run_string "#lang count\n(printf \"*~a\" (+ 1 2))\n(printf \"*~a\" (- 4 3))\n" in
  Printf.printf "output: %s\n" out;
  assert (out = "Found 2 expressions.*3*1");
  print_endline "(matches the paper)";

  (* The language is compositional: definitions don't count as
     expressions... they do here — the paper counts top-level forms, so a
     program with macros that expand into several forms still reports its
     source-level count, because #%module-begin runs before expansion. *)
  print_endline "";
  print_endline "A second program, with macros (counted before expansion):";
  let out =
    run_string
      {|#lang count
(define-syntax-rule (twice e) (begin e e))
(twice (display "x"))
|}
  in
  Printf.printf "output: %s\n" out;
  assert (out = "Found 2 expressions.xx")
