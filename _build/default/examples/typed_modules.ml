(** The paper's running demonstration, end to end (§3–§7):

    1. a typed module (server) exporting a typed function;
    2. a typed client using it with no dynamic checks (§6.2);
    3. an untyped client protected by a contract generated from the type;
    4. [require/typed]: importing an untyped library into typed code
       (fig. 4 — the paper's [md5] example);
    5. a type error caught at compile time;
    6. the optimizer's source-to-source rewriting (fig. 5).

    Run with: dune exec examples/typed_modules.exe *)

open Liblang_core.Core

let section title = Printf.printf "\n=== %s ===\n" title

let () =
  init ();

  section "1. A typed server module";
  let server =
    {|#lang typed/racket
(: add-5 (Integer -> Integer))
(define (add-5 x) (+ x 5))
(provide add-5)
|}
  in
  print_string server;
  ignore (Modsys.declare ~name:"server" server);
  print_endline "compiled: type of add-5 persisted for later compilations (§5)";

  section "2. A typed client: no contracts between typed modules";
  let out = run_string "#lang typed/racket\n(require server)\n(display (add-5 7))\n" in
  Printf.printf "(add-5 7) = %s   -- the export indirection chose the raw binding\n" out;

  section "3. An untyped client: contract checks at the boundary";
  let out = run_string "#lang racket\n(require server)\n(display (add-5 12))\n" in
  Printf.printf "(add-5 12) = %s  -- safe use passes through the contract\n" out;
  (try ignore (run_string "#lang racket\n(require server)\n(add-5 \"bad\")\n")
   with Contracts.Contract_violation _ as e ->
     Printf.printf "(add-5 \"bad\") => %s\n" (Option.get (Contracts.violation_message e)));

  section "4. require/typed: importing untyped code (fig. 4)";
  (* the md5-style example: an untyped library function, given a type *)
  ignore
    (Modsys.declare ~name:"file/md5"
       {|#lang racket
(provide md5)
;; a toy hash standing in for the paper's md5
(define (md5 s)
  (let loop ([i 0] [h 5381])
    (if (= i (string-length s))
        (number->string h)
        (loop (+ i 1) (modulo (+ (* 33 h) (char->integer (string-ref s i))) 16777213)))))
|});
  let out =
    run_string
      {|#lang typed/racket
(require/typed file/md5 [md5 (String -> String)])
(display (md5 "hello world"))
|}
  in
  Printf.printf "(md5 \"hello world\") = %s\n" out;
  (try
     ignore
       (declare_string
          {|#lang typed/racket
(require/typed file/md5 [md5 (String -> String)])
(md5 7)
|})
   with Value.Scheme_error m -> Printf.printf "static error for (md5 7): %s\n" m);

  section "5. Type errors are compile-time errors (§4.1)";
  (try ignore (declare_string "#lang typed/racket\n(define w : Integer 3.7)\n")
   with Value.Scheme_error m -> Printf.printf "%s\n" m);

  section "6. The optimizer's rewriting (fig. 5)";
  Optimize.reset_stats ();
  ignore
    (declare_string
       {|#lang typed/racket
(define (norm [x : Float] [y : Float]) : Float
  (sqrt (+ (* x x) (* y y))))
(define (mag2 [z : Float-Complex]) : Float
  (magnitude (* z z)))
|});
  Printf.printf "rewrites performed: %d total\n" (Optimize.total_rewrites ());
  List.iter
    (fun k -> Printf.printf "  %-18s %d\n" k (Optimize.stat k))
    [ "fl:+"; "fl:*"; "fl:sqrt"; "cpx:*"; "cpx:magnitude" ];
  print_endline "generic (+ x x) became unsafe-fl+; (* z z) became unsafe-c*;";
  print_endline "the unsafe primitives additionally signal the backend's unboxing (§7.1)";

  section "7. Occurrence typing feeds the optimizer";
  Optimize.reset_stats ();
  ignore
    (declare_string
       {|#lang typed/racket
(define (sum [l : (Listof Integer)]) : Integer
  (if (null? l) 0 (+ (car l) (sum (cdr l)))))
|});
  Printf.printf
    "after the (null? l) test, car/cdr are tag-check-free: pair:car=%d pair:cdr=%d\n"
    (Optimize.stat "pair:car") (Optimize.stat "pair:cdr")
