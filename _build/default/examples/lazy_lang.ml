(** A lazy language as a library (the paper cites Lazy Racket, §1).

    The [lazy] language overrides the implicit [#%app] hook so that
    applications of user functions delay their arguments, and [if] forces
    its test.  No changes to the expander, the compiler, or the runtime —
    the different dynamic semantics is just another set of exports.

    Run with: dune exec examples/lazy_lang.exe *)

open Liblang_core.Core

let section title = Printf.printf "\n=== %s ===\n" title

let () =
  init ();

  section "1. Arguments are not evaluated until needed";
  let out =
    run_string
      {|#lang lazy
(define (const-five x) 5)
(display (const-five (error "this would explode in a strict language")))
|}
  in
  Printf.printf "output: %s\n" out;

  section "2. ... but they are evaluated when used";
  let out =
    run_string
      {|#lang lazy
(define (square x) (* x x))
(display (square (+ 3 4)))
|}
  in
  Printf.printf "output: %s\n" out;

  section "3. Call-by-need: each argument is computed at most once";
  let out =
    run_string
      {|#lang lazy
(define (twice x) (+ x x))
(display (twice (begin (display "!") 21)))
|}
  in
  Printf.printf "output: %s   -- one '!', not two: the promise memoizes\n" out;

  section "4. The same program under #lang racket, for contrast";
  (try ignore (run_string "#lang racket\n(define (const-five x) 5)\n(display (const-five (error \"boom\")))\n")
   with Value.Scheme_error m -> Printf.printf "strict evaluation raises: %s\n" m);

  section "5. An 'infinite' computation, cut off by laziness";
  let out =
    run_string
      {|#lang lazy
(define (loop-forever) (loop-forever))
(define (pick a b) (if (> 2 1) a b))
(display (pick 'finished (loop-forever)))
|}
  in
  Printf.printf "output: %s\n" out
