examples/quickstart.ml: Binding Denote Expander Liblang_core List Modsys Printf String Stx Value
