examples/typed_modules.ml: Contracts Liblang_core List Modsys Optimize Option Printf Value
