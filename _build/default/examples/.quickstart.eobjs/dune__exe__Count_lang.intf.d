examples/count_lang.mli:
