examples/lazy_lang.mli:
