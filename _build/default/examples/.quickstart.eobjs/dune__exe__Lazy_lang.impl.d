examples/lazy_lang.ml: Liblang_core Printf Value
