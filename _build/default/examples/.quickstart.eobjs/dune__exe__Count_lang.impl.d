examples/count_lang.ml: Liblang_core Printf
