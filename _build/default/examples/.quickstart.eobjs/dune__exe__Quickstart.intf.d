examples/quickstart.mli:
