examples/typed_modules.mli:
