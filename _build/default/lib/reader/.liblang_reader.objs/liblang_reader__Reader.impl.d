lib/reader/reader.ml: Buffer Datum Float List Printf Srcloc String
