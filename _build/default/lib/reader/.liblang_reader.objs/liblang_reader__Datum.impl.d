lib/reader/datum.ml: Buffer Float Format List Printf Srcloc String
