lib/reader/srcloc.ml: Format Printf
