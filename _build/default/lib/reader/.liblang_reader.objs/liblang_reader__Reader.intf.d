lib/reader/reader.mli: Datum Srcloc
