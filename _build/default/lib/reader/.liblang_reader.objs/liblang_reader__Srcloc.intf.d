lib/reader/srcloc.mli: Format
