(** Source locations for datums and syntax objects. *)

type t = {
  file : string;
  line : int;  (** 1-based *)
  col : int;   (** 0-based *)
  pos : int;   (** 0-based offset into the source *)
  span : int;  (** number of characters covered *)
}

val none : t
val make : file:string -> line:int -> col:int -> pos:int -> span:int -> t
val is_none : t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** A location spanning from the start of the first to the end of the
    second. *)
val merge : t -> t -> t
