(** Source locations for datums and syntax objects. *)

type t = {
  file : string;
  line : int;  (** 1-based *)
  col : int;   (** 0-based *)
  pos : int;   (** 0-based offset into the source *)
  span : int;  (** number of characters covered *)
}

let none = { file = "<none>"; line = 0; col = 0; pos = 0; span = 0 }

let make ~file ~line ~col ~pos ~span = { file; line; col; pos; span }

let is_none l = l.line = 0 && l.file = "<none>"

let to_string l =
  if is_none l then "<no location>"
  else Printf.sprintf "%s:%d:%d" l.file l.line l.col

let pp fmt l = Format.pp_print_string fmt (to_string l)

(* A location spanning from the start of [a] to the end of [b]. *)
let merge a b =
  if is_none a then b
  else if is_none b then a
  else { a with span = max a.span (b.pos + b.span - a.pos) }
