(** Raw read-time data: the output of the reader, before lexical context is
    attached.  Mirrors Racket's notion of a datum.  Numbers follow the
    three-level tower this runtime implements: fixnums, flonums, and
    float-complex.  (Racket's exact rationals and bignums are out of scope;
    see DESIGN.md.) *)

type atom =
  | Sym of string
  | Int of int
  | Float of float
  | Cpx of float * float  (** float-complex: real, imaginary *)
  | Bool of bool
  | Str of string
  | Char of char

type t =
  | Atom of atom
  | List of annot list
  | DotList of annot list * annot  (** improper list; first list is nonempty *)
  | Vec of annot list

and annot = { d : t; loc : Srcloc.t }

let atom ?(loc = Srcloc.none) a = { d = Atom a; loc }
let sym ?loc s = atom ?loc (Sym s)
let int ?loc n = atom ?loc (Int n)
let float ?loc f = atom ?loc (Float f)
let bool ?loc b = atom ?loc (Bool b)
let str ?loc s = atom ?loc (Str s)
let list ?(loc = Srcloc.none) xs = { d = List xs; loc }

let is_sym name a = match a.d with Atom (Sym s) -> String.equal s name | _ -> false

(* Float printing that round-trips and always shows a decimal point or
   exponent, Scheme-style. *)
let float_to_string f =
  if Float.is_nan f then "+nan.0"
  else if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
  else if f = Float.infinity then "+inf.0"
  else if f = Float.neg_infinity then "-inf.0"
  else
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let char_to_string c =
  match c with
  | ' ' -> "#\\space"
  | '\n' -> "#\\newline"
  | '\t' -> "#\\tab"
  | '\r' -> "#\\return"
  | '\000' -> "#\\nul"
  | c -> Printf.sprintf "#\\%c" c

let cpx_to_string re im =
  let ims = float_to_string im in
  let ims = if String.length ims > 0 && (ims.[0] = '-' || ims.[0] = '+') then ims else "+" ^ ims in
  float_to_string re ^ ims ^ "i"

let atom_to_string = function
  | Sym s -> s
  | Int n -> string_of_int n
  | Float f -> float_to_string f
  | Cpx (re, im) -> cpx_to_string re im
  | Bool true -> "#t"
  | Bool false -> "#f"
  | Str s -> escape_string s
  | Char c -> char_to_string c

let rec to_string d =
  match d with
  | Atom a -> atom_to_string a
  | List [ { d = Atom (Sym "quote"); _ }; x ] -> "'" ^ to_string x.d
  | List [ { d = Atom (Sym "quasiquote"); _ }; x ] -> "`" ^ to_string x.d
  | List [ { d = Atom (Sym "unquote"); _ }; x ] -> "," ^ to_string x.d
  | List [ { d = Atom (Sym "unquote-splicing"); _ }; x ] -> ",@" ^ to_string x.d
  | List xs -> "(" ^ String.concat " " (List.map annot_to_string xs) ^ ")"
  | DotList (xs, tl) ->
      "("
      ^ String.concat " " (List.map annot_to_string xs)
      ^ " . " ^ annot_to_string tl ^ ")"
  | Vec xs -> "#(" ^ String.concat " " (List.map annot_to_string xs) ^ ")"

and annot_to_string a = to_string a.d

let pp fmt d = Format.pp_print_string fmt (to_string d)
let pp_annot fmt a = pp fmt a.d

let rec equal a b =
  match (a, b) with
  | Atom x, Atom y -> atom_equal x y
  | List xs, List ys -> List.length xs = List.length ys && List.for_all2 annot_equal xs ys
  | DotList (xs, xt), DotList (ys, yt) ->
      List.length xs = List.length ys
      && List.for_all2 annot_equal xs ys
      && annot_equal xt yt
  | Vec xs, Vec ys -> List.length xs = List.length ys && List.for_all2 annot_equal xs ys
  | _ -> false

and annot_equal a b = equal a.d b.d

and atom_equal x y =
  match (x, y) with
  | Sym a, Sym b -> String.equal a b
  | Int a, Int b -> a = b
  | Float a, Float b -> Float.equal a b
  | Cpx (a, b), Cpx (c, d) -> Float.equal a c && Float.equal b d
  | Bool a, Bool b -> a = b
  | Str a, Str b -> String.equal a b
  | Char a, Char b -> a = b
  | _ -> false
