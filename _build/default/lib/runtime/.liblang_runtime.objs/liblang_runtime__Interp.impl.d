lib/runtime/interp.ml: Array Ast Flfuse Hashtbl List Value
