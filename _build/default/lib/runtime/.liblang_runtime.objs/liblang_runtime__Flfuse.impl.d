lib/runtime/flfuse.ml: Array Float Numeric Value
