lib/runtime/value.ml: Array Bytes Float Format Hashtbl Liblang_reader Liblang_stx List Printf String
