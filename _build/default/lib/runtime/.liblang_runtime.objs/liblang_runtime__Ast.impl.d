lib/runtime/ast.ml: Array Liblang_stx Printf String Value
