lib/runtime/numeric.ml: Float Value
