lib/runtime/prims.ml: Array Buffer Bytes Char Float Fun Hashtbl Interp Liblang_reader Liblang_stx List Numeric Option Printf Seq String Unix Value
