lib/runtime/naive.ml: Array Ast Interp Value
