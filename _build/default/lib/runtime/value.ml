(** Runtime values of the object language.

    The numeric tower has three levels — fixnum ([Int]), flonum ([Float]) and
    float-complex ([Cpx]) — matching the types the paper's optimizer
    specializes on.  Syntax objects are first-class values ([Stx]) because
    transformers run object-language code at compile time (phase 1). *)

module Stx = Liblang_stx.Stx

type value =
  | Void
  | Undefined  (** the value of a letrec variable before initialization *)
  | Bool of bool
  | Int of int
  | Float of float
  | Cpx of float * float
  | Sym of string
  | Char of char
  | Str of bytes  (** mutable, like Scheme strings *)
  | Nil
  | Pair of pcell
  | Vec of value array
  | Box of value ref
  | Closure of closure
  | Prim of prim
  | StxV of Stx.t
  | Promise of promise
  | Values of value list  (** multiple return values *)
  | Hash of (value, value) Hashtbl.t

and pcell = { mutable car : value; mutable cdr : value }

and closure = {
  arity : int;  (** number of required parameters *)
  rest : bool;  (** accepts extra arguments collected into a list *)
  mutable cl_name : string;
  cl_env : env;
  code : env -> value;  (** runs the body in [cl_env] extended with a frame *)
}

and prim = { p_name : string; p_fn : value list -> value }

and promise = { mutable forced : bool; mutable thunk : value (* closure or memoized value *) }

(** Environments are chains of frames.  The top environment is its own
    parent, which keeps lookups allocation-free and branch-predictable. *)
and env = { frame : value array; up : env }

exception Scheme_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Scheme_error s)) fmt

let rec top_env = { frame = [||]; up = top_env }

let truthy = function Bool false -> false | _ -> true

(* -- constructors -------------------------------------------------------- *)

let cons a b = Pair { car = a; cdr = b }

let rec of_list = function [] -> Nil | x :: rest -> cons x (of_list rest)

let rec to_list = function
  | Nil -> []
  | Pair { car; cdr } -> car :: to_list cdr
  | v -> error "expected a proper list, given partial tail %s" (tag_name v)

and tag_name = function
  | Void -> "void"
  | Undefined -> "undefined"
  | Bool _ -> "boolean"
  | Int _ -> "fixnum"
  | Float _ -> "flonum"
  | Cpx _ -> "float-complex"
  | Sym _ -> "symbol"
  | Char _ -> "character"
  | Str _ -> "string"
  | Nil -> "empty-list"
  | Pair _ -> "pair"
  | Vec _ -> "vector"
  | Box _ -> "box"
  | Closure _ -> "procedure"
  | Prim _ -> "primitive"
  | StxV _ -> "syntax"
  | Promise _ -> "promise"
  | Values _ -> "multiple-values"
  | Hash _ -> "hash"

let to_list_opt v =
  let rec go acc = function
    | Nil -> Some (List.rev acc)
    | Pair { car; cdr } -> go (car :: acc) cdr
    | _ -> None
  in
  go [] v

let string_ s = Str (Bytes.of_string s)

(* -- conversions between values and read-time datums --------------------- *)

module Datum = Liblang_reader.Datum

let rec of_datum (d : Datum.t) : value =
  match d with
  | Datum.Atom (Datum.Sym s) -> Sym s
  | Datum.Atom (Datum.Int n) -> Int n
  | Datum.Atom (Datum.Float f) -> Float f
  | Datum.Atom (Datum.Cpx (re, im)) -> Cpx (re, im)
  | Datum.Atom (Datum.Bool b) -> Bool b
  | Datum.Atom (Datum.Str s) -> string_ s
  | Datum.Atom (Datum.Char c) -> Char c
  | Datum.List xs -> of_list (List.map (fun a -> of_datum a.Datum.d) xs)
  | Datum.DotList (xs, tl) ->
      List.fold_right (fun a acc -> cons (of_datum a.Datum.d) acc) xs (of_datum tl.Datum.d)
  | Datum.Vec xs -> Vec (Array.of_list (List.map (fun a -> of_datum a.Datum.d) xs))

let rec to_datum (v : value) : Datum.t =
  let annot d = { Datum.d; loc = Liblang_reader.Srcloc.none } in
  match v with
  | Sym s -> Datum.Atom (Datum.Sym s)
  | Int n -> Datum.Atom (Datum.Int n)
  | Float f -> Datum.Atom (Datum.Float f)
  | Cpx (re, im) -> Datum.Atom (Datum.Cpx (re, im))
  | Bool b -> Datum.Atom (Datum.Bool b)
  | Str s -> Datum.Atom (Datum.Str (Bytes.to_string s))
  | Char c -> Datum.Atom (Datum.Char c)
  | Nil -> Datum.List []
  | Pair _ -> (
      match to_list_opt v with
      | Some xs -> Datum.List (List.map (fun x -> annot (to_datum x)) xs)
      | None ->
          let rec split acc = function
            | Pair { car; cdr } -> split (car :: acc) cdr
            | tl -> (List.rev acc, tl)
          in
          let xs, tl = split [] v in
          Datum.DotList (List.map (fun x -> annot (to_datum x)) xs, annot (to_datum tl)))
  | Vec xs -> Datum.Vec (Array.to_list (Array.map (fun x -> annot (to_datum x)) xs))
  | StxV s -> Stx.to_datum s
  | v -> error "cannot convert %s to datum" (tag_name v)

(* -- printing ------------------------------------------------------------ *)

(* [display] style: strings and characters unescaped. *)
let rec display_string v =
  match v with
  | Str s -> Bytes.to_string s
  | Char c -> String.make 1 c
  | _ -> write_string_ ~display:true v

(* [write] style: strings escaped, characters as literals. *)
and write_string v = write_string_ ~display:false v

and write_string_ ~display v =
  let sub x = if display then display_string x else write_string_ ~display:false x in
  match v with
  | Void -> "#<void>"
  | Undefined -> "#<undefined>"
  | Bool true -> "#t"
  | Bool false -> "#f"
  | Int n -> string_of_int n
  | Float f -> Datum.float_to_string f
  | Cpx (re, im) -> Datum.cpx_to_string re im
  | Sym s -> s
  | Char c -> Datum.char_to_string c
  | Str s -> Datum.escape_string (Bytes.to_string s)
  | Nil -> "()"
  | Pair { car = Sym "quote"; cdr = Pair { car = x; cdr = Nil } } -> "'" ^ sub x
  | Pair { car = Sym "quasiquote"; cdr = Pair { car = x; cdr = Nil } } -> "`" ^ sub x
  | Pair { car = Sym "unquote"; cdr = Pair { car = x; cdr = Nil } } -> "," ^ sub x
  | Pair { car = Sym "unquote-splicing"; cdr = Pair { car = x; cdr = Nil } } -> ",@" ^ sub x
  | Pair _ ->
      let rec parts acc = function
        | Nil -> (List.rev acc, None)
        | Pair { car; cdr } -> parts (car :: acc) cdr
        | tl -> (List.rev acc, Some tl)
      in
      let xs, tl = parts [] v in
      let body = String.concat " " (List.map sub xs) in
      (match tl with
      | None -> "(" ^ body ^ ")"
      | Some tl -> "(" ^ body ^ " . " ^ sub tl ^ ")")
  | Vec xs -> "#(" ^ String.concat " " (Array.to_list (Array.map sub xs)) ^ ")"
  | Box b -> "#&" ^ sub !b
  | Closure c -> if c.cl_name = "" then "#<procedure>" else "#<procedure:" ^ c.cl_name ^ ">"
  | Prim p -> "#<procedure:" ^ p.p_name ^ ">"
  | StxV s -> "#<syntax " ^ Stx.to_string s ^ ">"
  | Promise _ -> "#<promise>"
  | Values vs -> String.concat "\n" (List.map sub vs)
  | Hash _ -> "#<hash>"

let pp fmt v = Format.pp_print_string fmt (write_string v)

(* -- equality ------------------------------------------------------------ *)

let eqv a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | Cpx (a1, b1), Cpx (a2, b2) -> Float.equal a1 a2 && Float.equal b1 b2
  | Bool x, Bool y -> x = y
  | Sym x, Sym y -> String.equal x y
  | Char x, Char y -> x = y
  | Nil, Nil -> true
  | Void, Void -> true
  | Undefined, Undefined -> true
  | _ -> a == b

let rec equal_values a b =
  eqv a b
  ||
  match (a, b) with
  | Str x, Str y -> Bytes.equal x y
  | Pair x, Pair y -> equal_values x.car y.car && equal_values x.cdr y.cdr
  | Vec x, Vec y ->
      Array.length x = Array.length y
      &&
      let rec go i = i >= Array.length x || (equal_values x.(i) y.(i) && go (i + 1)) in
      go 0
  | Box x, Box y -> equal_values !x !y
  | _ -> false

(* -- procedure helpers ---------------------------------------------------- *)

let prim name fn = Prim { p_name = name; p_fn = fn }

let procedure_name = function
  | Closure c -> c.cl_name
  | Prim p -> p.p_name
  | v -> error "not a procedure: %s" (write_string v)

let is_procedure = function Closure _ | Prim _ -> true | _ -> false
