(** The numeric tower: generic arithmetic with dynamic tag dispatch.

    Every generic operation inspects the tags of its operands and dispatches
    to fixnum, flonum, or float-complex code, coercing upward as needed.
    This dispatch-and-coerce work is precisely what the paper's type-driven
    optimizer removes by rewriting to the unsafe type-specialized primitives
    in {!Unsafe_ops} (§7.1): "not only do these primitives avoid the run-time
    dispatch of generic operations, they also serve as signals to the Racket
    code generator to guide its unboxing optimizations". *)

open Value

let type_err op v = error "%s: expects a number, given %s" op (write_string v)

let to_float op = function
  | Int n -> float_of_int n
  | Float f -> f
  | v -> type_err op v

let cpx_parts op = function
  | Int n -> (float_of_int n, 0.)
  | Float f -> (f, 0.)
  | Cpx (re, im) -> (re, im)
  | v -> type_err op v

let is_number = function Int _ | Float _ | Cpx _ -> true | _ -> false

(* -- generic binary arithmetic ------------------------------------------- *)

let add a b =
  match (a, b) with
  | Int x, Int y -> Int (x + y)
  | Float x, Float y -> Float (x +. y)
  | Int x, Float y -> Float (float_of_int x +. y)
  | Float x, Int y -> Float (x +. float_of_int y)
  | Cpx _, _ | _, Cpx _ ->
      let ar, ai = cpx_parts "+" a and br, bi = cpx_parts "+" b in
      Cpx (ar +. br, ai +. bi)
  | _ -> type_err "+" (if is_number a then b else a)

let sub a b =
  match (a, b) with
  | Int x, Int y -> Int (x - y)
  | Float x, Float y -> Float (x -. y)
  | Int x, Float y -> Float (float_of_int x -. y)
  | Float x, Int y -> Float (x -. float_of_int y)
  | Cpx _, _ | _, Cpx _ ->
      let ar, ai = cpx_parts "-" a and br, bi = cpx_parts "-" b in
      Cpx (ar -. br, ai -. bi)
  | _ -> type_err "-" (if is_number a then b else a)

let mul a b =
  match (a, b) with
  | Int x, Int y -> Int (x * y)
  | Float x, Float y -> Float (x *. y)
  | Int x, Float y -> Float (float_of_int x *. y)
  | Float x, Int y -> Float (x *. float_of_int y)
  | Cpx _, _ | _, Cpx _ ->
      let ar, ai = cpx_parts "*" a and br, bi = cpx_parts "*" b in
      Cpx ((ar *. br) -. (ai *. bi), (ar *. bi) +. (ai *. br))
  | _ -> type_err "*" (if is_number a then b else a)

let cpx_div ar ai br bi =
  let d = (br *. br) +. (bi *. bi) in
  (((ar *. br) +. (ai *. bi)) /. d, ((ai *. br) -. (ar *. bi)) /. d)

(* Racket's [/] on two exact integers yields an exact rational; this tower
   has no rationals, so non-evenly-dividing fixnums produce a flonum (see
   DESIGN.md substitutions). *)
let div a b =
  match (a, b) with
  | Int _, Int 0 -> error "/: division by zero"
  | Int x, Int y -> if x mod y = 0 then Int (x / y) else Float (float_of_int x /. float_of_int y)
  | Float x, Float y -> Float (x /. y)
  | Int x, Float y -> Float (float_of_int x /. y)
  | Float x, Int y -> Float (x /. float_of_int y)
  | Cpx _, _ | _, Cpx _ ->
      let ar, ai = cpx_parts "/" a and br, bi = cpx_parts "/" b in
      let re, im = cpx_div ar ai br bi in
      Cpx (re, im)
  | _ -> type_err "/" (if is_number a then b else a)

let quotient a b =
  match (a, b) with
  | Int _, Int 0 -> error "quotient: division by zero"
  | Int x, Int y -> Int (x / y)
  | _ -> error "quotient: expects fixnums"

let remainder a b =
  match (a, b) with
  | Int _, Int 0 -> error "remainder: division by zero"
  | Int x, Int y -> Int (x mod y)
  | _ -> error "remainder: expects fixnums"

let modulo a b =
  match (a, b) with
  | Int _, Int 0 -> error "modulo: division by zero"
  | Int x, Int y ->
      let m = x mod y in
      Int (if m <> 0 && (m < 0) <> (y < 0) then m + y else m)
  | _ -> error "modulo: expects fixnums"

(* -- generic comparison --------------------------------------------------- *)

let cmp op name a b =
  match (a, b) with
  | Int x, Int y -> op (compare x y) 0
  | Float x, Float y -> op (compare x y) 0
  | Int x, Float y -> op (compare (float_of_int x) y) 0
  | Float x, Int y -> op (compare x (float_of_int y)) 0
  | _ -> error "%s: expects real numbers, given %s and %s" name (write_string a) (write_string b)

let lt = cmp ( < ) "<"
let gt = cmp ( > ) ">"
let le = cmp ( <= ) "<="
let ge = cmp ( >= ) ">="

let num_eq a b =
  match (a, b) with
  | Cpx (ar, ai), Cpx (br, bi) -> Float.equal ar br && Float.equal ai bi
  | Cpx (ar, ai), (Int _ | Float _) -> Float.equal ai 0. && Float.equal ar (to_float "=" b)
  | (Int _ | Float _), Cpx (br, bi) -> Float.equal bi 0. && Float.equal br (to_float "=" a)
  | _ -> cmp ( = ) "=" a b

(* -- generic unary -------------------------------------------------------- *)

let neg = function
  | Int n -> Int (-n)
  | Float f -> Float (-.f)
  | Cpx (re, im) -> Cpx (-.re, -.im)
  | v -> type_err "-" v

let abs_ = function
  | Int n -> Int (abs n)
  | Float f -> Float (Float.abs f)
  | v -> type_err "abs" v

let add1 = function Int n -> Int (n + 1) | Float f -> Float (f +. 1.) | v -> type_err "add1" v
let sub1 = function Int n -> Int (n - 1) | Float f -> Float (f -. 1.) | v -> type_err "sub1" v

let sqrt_ = function
  | Int n when n >= 0 ->
      let r = int_of_float (Float.round (sqrt (float_of_int n))) in
      if r * r = n then Int r else Float (sqrt (float_of_int n))
  | Int n -> Cpx (0., sqrt (float_of_int (-n)))
  | Float f when f >= 0. -> Float (sqrt f)
  | Float f -> Cpx (0., sqrt (-.f))
  | Cpx (re, im) ->
      let m = sqrt (sqrt ((re *. re) +. (im *. im))) in
      let theta = Float.atan2 im re /. 2. in
      Cpx (m *. cos theta, m *. sin theta)
  | v -> type_err "sqrt" v

let float_fun name f = function
  | Int n -> Float (f (float_of_int n))
  | Float x -> Float (f x)
  | v -> type_err name v

let magnitude = function
  | Int n -> Int (abs n)
  | Float f -> Float (Float.abs f)
  | Cpx (re, im) -> Float (Float.hypot re im)
  | v -> type_err "magnitude" v

let real_part = function
  | (Int _ | Float _) as v -> v
  | Cpx (re, _) -> Float re
  | v -> type_err "real-part" v

let imag_part = function
  | Int _ -> Int 0
  | Float _ -> Float 0.
  | Cpx (_, im) -> Float im
  | v -> type_err "imag-part" v

let make_rectangular a b =
  match (a, b) with
  | (Int _ | Float _), (Int _ | Float _) ->
      Cpx (to_float "make-rectangular" a, to_float "make-rectangular" b)
  | _ -> error "make-rectangular: expects real numbers"

let make_polar a b =
  match (a, b) with
  | (Int _ | Float _), (Int _ | Float _) ->
      let m = to_float "make-polar" a and t = to_float "make-polar" b in
      Cpx (m *. cos t, m *. sin t)
  | _ -> error "make-polar: expects real numbers"

let expt a b =
  match (a, b) with
  | Int x, Int y when y >= 0 ->
      let rec go acc b e = if e = 0 then acc else go (if e land 1 = 1 then acc * b else acc) (b * b) (e lsr 1) in
      Int (go 1 x y)
  | _, _ -> Float (Float.pow (to_float "expt" a) (to_float "expt" b))

let exact_to_inexact = function
  | Int n -> Float (float_of_int n)
  | (Float _ | Cpx _) as v -> v
  | v -> type_err "exact->inexact" v

let inexact_to_exact = function
  | Int _ as v -> v
  | Float f when Float.is_integer f -> Int (int_of_float f)
  | Float f -> error "inexact->exact: no exact rationals in this tower: %f" f
  | v -> type_err "inexact->exact" v

(* Scheme's round is round-half-to-even (banker's rounding) *)
let round_half_even f =
  let r = Float.round f in
  if Float.abs (f -. r) = 0.5 then 2.0 *. Float.round (f /. 2.0) else r

let round_to name f = function
  | Int _ as v -> v
  | Float x -> Float (f x)
  | v -> type_err name v

let floor_ = round_to "floor" Float.floor
let ceiling_ = round_to "ceiling" Float.ceil
let truncate_ = round_to "truncate" Float.trunc
let round_ = round_to "round" round_half_even

let min_ a b = if lt a b then a else b
let max_ a b = if gt a b then a else b

let gcd_ a b =
  match (a, b) with
  | Int x, Int y ->
      let rec g a b = if b = 0 then abs a else g b (a mod b) in
      Int (g x y)
  | _ -> error "gcd: expects fixnums"

(* -- predicates ----------------------------------------------------------- *)

let is_zero = function
  | Int n -> n = 0
  | Float f -> f = 0.
  | Cpx (re, im) -> re = 0. && im = 0.
  | v -> type_err "zero?" v

let is_exact_integer = function Int _ -> true | _ -> false
let is_flonum = function Float _ -> true | _ -> false
let is_real = function Int _ | Float _ -> true | _ -> false

let is_integer = function
  | Int _ -> true
  | Float f -> Float.is_integer f
  | _ -> false

let is_positive = function Int n -> n > 0 | Float f -> f > 0. | v -> type_err "positive?" v
let is_negative = function Int n -> n < 0 | Float f -> f < 0. | v -> type_err "negative?" v
let is_even = function Int n -> n land 1 = 0 | v -> type_err "even?" v
let is_odd = function Int n -> n land 1 = 1 | v -> type_err "odd?" v
