lib/modules/modsys.ml: Fun Hashtbl Liblang_expander Liblang_reader Liblang_runtime Liblang_stx List Option Printf String
