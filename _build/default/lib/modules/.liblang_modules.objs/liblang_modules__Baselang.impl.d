lib/modules/baselang.ml: Liblang_contracts Liblang_expander Liblang_runtime Liblang_stx List Modsys
