(** The runtime namespace: module-level variables, keyed by binding uid.

    A binding imported from another module keeps its identity (§5), so the
    importing module's references reach the exporting module's global cell
    with no extra indirection. *)

module Binding = Liblang_stx.Binding
module Ast = Liblang_runtime.Ast
module Value = Liblang_runtime.Value

let table : (int, Ast.global) Hashtbl.t = Hashtbl.create 1024

(** The global cell for a binding, created on demand. *)
let global_of (b : Binding.t) : Ast.global =
  match Hashtbl.find_opt table b.Binding.uid with
  | Some g -> g
  | None ->
      let g = Ast.global b.Binding.name in
      Hashtbl.add table b.Binding.uid g;
      g

(** Install an immutable (non-[set!]-able) value, e.g. a primitive. *)
let define_immutable (b : Binding.t) (v : Value.value) =
  let g = Ast.global ~mutable_:false b.Binding.name in
  g.Ast.g_val <- v;
  Hashtbl.replace table b.Binding.uid g

let lookup_value (b : Binding.t) : Value.value option =
  match Hashtbl.find_opt table b.Binding.uid with
  | Some g when g.Ast.g_val != Value.Undefined -> Some g.Ast.g_val
  | _ -> None
