(** The compile-time store: per-compilation mutable state for phase-1 code.

    The paper (§5, §6.2) leans on Racket's guarantee that "each module is
    compiled with a fresh store": mutations made by compile-time code during
    one compilation are invisible to other compilations.  Languages keep
    their compile-time state here (e.g. Typed Racket's type environment and
    its [typed-context?] flag); the module compiler installs a fresh store
    around each module compilation and replays required modules'
    compile-time declarations into it. *)

module Value = Liblang_runtime.Value

type t = {
  id : int;
  vals : (string, Value.value) Hashtbl.t;
  tables : (string, (int, Value.value) Hashtbl.t) Hashtbl.t;
      (** named tables keyed by binding uid — e.g. a type environment *)
}

let counter = ref 0

let create () : t =
  incr counter;
  { id = !counter; vals = Hashtbl.create 32; tables = Hashtbl.create 4 }

let current : t ref = ref (create ())

let with_fresh_store f =
  let saved = !current in
  current := create ();
  Fun.protect ~finally:(fun () -> current := saved) f

let store_id () = !current.id
let get key = Hashtbl.find_opt !current.vals key
let set key v = Hashtbl.replace !current.vals key v

(** A named, binding-uid-keyed table in the current store, created on first
    access.  Typed Racket's type environment is [uid_table "typed:types"]. *)
let uid_table name : (int, Value.value) Hashtbl.t =
  match Hashtbl.find_opt !current.tables name with
  | Some t -> t
  | None ->
      let t = Hashtbl.create 64 in
      Hashtbl.add !current.tables name t;
      t
