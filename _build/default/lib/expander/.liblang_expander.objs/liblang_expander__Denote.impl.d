lib/expander/denote.ml: Hashtbl Liblang_runtime Liblang_stx Syntax_rules
