lib/expander/syntax_rules.ml: Liblang_reader Liblang_stx List Option
