lib/expander/compile.ml: Array Denote Liblang_runtime Liblang_stx List Namespace Option Printf String
