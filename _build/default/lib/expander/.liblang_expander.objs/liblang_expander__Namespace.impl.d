lib/expander/namespace.ml: Hashtbl Liblang_runtime Liblang_stx
