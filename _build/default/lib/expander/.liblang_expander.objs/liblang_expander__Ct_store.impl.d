lib/expander/ct_store.ml: Fun Hashtbl Liblang_runtime
