lib/expander/expander.ml: Compile Denote Liblang_reader Liblang_runtime Liblang_stx List Option Printf String Syntax_rules
