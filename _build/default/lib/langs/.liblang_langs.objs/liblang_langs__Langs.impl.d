lib/langs/langs.ml: Liblang_expander Liblang_modules Liblang_runtime Liblang_stx List String
