(** Higher-order contracts with blame (paper §6).

    A contract is represented as a {e projection}: a procedure taking a
    value and the two blame parties and returning a (possibly wrapped)
    value.  Flat contracts check immediately; function contracts wrap the
    procedure and swap blame on the domain (the classic
    Findler–Felleisen discipline).  Typed Racket generates these from types
    ([type->contract]) to guard the typed/untyped boundary. *)

open Liblang_runtime.Value

exception Contract_violation of { blame : string; contract : string; value : value }

let blame_error ~blame ~contract v = raise (Contract_violation { blame; contract; value = v })

let violation_message = function
  | Contract_violation { blame; contract; value } ->
      Some
        (Printf.sprintf "contract violation: expected %s, given: %s; blaming: %s" contract
           (write_string value) blame)
  | _ -> None

(* A contract value is a Prim of three arguments: value, positive party,
   negative party. *)

let party name = function
  | Str s -> Bytes.to_string s
  | Sym s -> s
  | v -> error "%s: expects a blame party (string or symbol), given %s" name (write_string v)

let project (c : value) (v : value) ~(pos : string) ~(neg : string) : value =
  Liblang_runtime.Interp.apply c [ v; Sym pos; Sym neg ]

let make_contract ~name (proj : value -> pos:string -> neg:string -> value) : value =
  prim ("contract:" ^ name) (function
    | [ v; p; n ] -> proj v ~pos:(party name p) ~neg:(party name n)
    | args -> error "%s: bad contract application (%d args)" name (List.length args))

let contract_name (c : value) =
  match c with
  | Prim p when String.length p.p_name > 9 && String.sub p.p_name 0 9 = "contract:" ->
      String.sub p.p_name 9 (String.length p.p_name - 9)
  | v -> write_string v

(** A flat contract from a predicate. *)
let flat ~name (pred : value -> bool) : value =
  make_contract ~name (fun v ~pos ~neg ->
      ignore neg;
      if pred v then v else blame_error ~blame:pos ~contract:name v)

let any_c = make_contract ~name:"any/c" (fun v ~pos:_ ~neg:_ -> v)

let none_c ~name = make_contract ~name (fun v ~pos ~neg:_ -> blame_error ~blame:pos ~contract:name v)

(** Disjunction of flat contracts (first-order check only). *)
let or_c (cs : value list) : value =
  let name = "(or/c " ^ String.concat " " (List.map contract_name cs) ^ ")" in
  make_contract ~name (fun v ~pos ~neg ->
      let ok =
        List.exists
          (fun c ->
            match project c v ~pos ~neg with
            | _ -> true
            | exception Contract_violation _ -> false)
          cs
      in
      if ok then v else blame_error ~blame:pos ~contract:name v)

(** Function contract: wraps the value; domain blame is swapped to the
    negative party (the caller), range blame stays positive. *)
let arrow (doms : value list) (rng : value) : value =
  let name =
    "(-> " ^ String.concat " " (List.map contract_name doms) ^ " " ^ contract_name rng ^ ")"
  in
  make_contract ~name (fun f ~pos ~neg ->
      if not (is_procedure f) then blame_error ~blame:pos ~contract:name f
      else
        prim
          (procedure_name f ^ "/contracted")
          (fun args ->
            if List.length args <> List.length doms then
              blame_error ~blame:neg ~contract:name (of_list args)
            else
              let checked = List.map2 (fun d a -> project d a ~pos:neg ~neg:pos) doms args in
              let result = Liblang_runtime.Interp.apply f checked in
              project rng result ~pos ~neg))

(** Structural contracts: check each element now (flat use only). *)
let listof (elem : value) : value =
  let name = "(listof " ^ contract_name elem ^ ")" in
  make_contract ~name (fun v ~pos ~neg ->
      match to_list_opt v with
      | None -> blame_error ~blame:pos ~contract:name v
      | Some xs -> of_list (List.map (fun x -> project elem x ~pos ~neg) xs))

let pair_c (car_c : value) (cdr_c : value) : value =
  let name = "(cons/c " ^ contract_name car_c ^ " " ^ contract_name cdr_c ^ ")" in
  make_contract ~name (fun v ~pos ~neg ->
      match v with
      | Pair p -> cons (project car_c p.car ~pos ~neg) (project cdr_c p.cdr ~pos ~neg)
      | _ -> blame_error ~blame:pos ~contract:name v)

let vectorof (elem : value) : value =
  let name = "(vectorof " ^ contract_name elem ^ ")" in
  make_contract ~name (fun v ~pos ~neg ->
      match v with
      | Vec a -> Vec (Array.map (fun x -> project elem x ~pos ~neg) a)
      | _ -> blame_error ~blame:pos ~contract:name v)

(* -- flat contracts for the base types -------------------------------------- *)

module Numeric = Liblang_runtime.Numeric

let integer_c = flat ~name:"exact-integer?" (function Int _ -> true | _ -> false)
let flonum_c = flat ~name:"flonum?" (function Float _ -> true | _ -> false)
let number_c = flat ~name:"number?" Numeric.is_number
let float_complex_c = flat ~name:"float-complex?" (function Cpx _ | Float _ -> true | _ -> false)
let boolean_c = flat ~name:"boolean?" (function Bool _ -> true | _ -> false)
let string_c = flat ~name:"string?" (function Str _ -> true | _ -> false)
let symbol_c = flat ~name:"symbol?" (function Sym _ -> true | _ -> false)
let char_c = flat ~name:"char?" (function Char _ -> true | _ -> false)
let void_c = flat ~name:"void?" (function Void -> true | _ -> false)
let null_c = flat ~name:"null?" (function Nil -> true | _ -> false)

(* -- object-language primitives ---------------------------------------------- *)

let prims : (string * value) list =
  [
    ("contract", prim "contract" (function
       | [ c; v; p; n ] -> project c v ~pos:(party "contract" p) ~neg:(party "contract" n)
       | _ -> error "contract: expects (contract contract value pos-party neg-party)"));
    ("flat-contract", prim "flat-contract" (function
       | [ name; pred ] ->
           let name =
             match name with Str s -> Bytes.to_string s | Sym s -> s | v -> write_string v
           in
           flat ~name (fun v -> truthy (Liblang_runtime.Interp.apply1 pred v))
       | _ -> error "flat-contract: expects a name and a predicate"));
    ("arrow-contract", prim "arrow-contract" (function
       | [ doms; rng ] -> arrow (to_list doms) rng
       | _ -> error "arrow-contract: expects a domain list and a range contract"));
    ("or-contract", prim "or-contract" (fun cs -> or_c cs));
    ("listof-contract", prim "listof-contract" (function
       | [ c ] -> listof c
       | _ -> error "listof-contract: expects a contract"));
    ("pair-contract", prim "pair-contract" (function
       | [ a; d ] -> pair_c a d
       | _ -> error "pair-contract: expects two contracts"));
    ("vectorof-contract", prim "vectorof-contract" (function
       | [ c ] -> vectorof c
       | _ -> error "vectorof-contract: expects a contract"));
    ("any/c", any_c);
    ("integer-contract", integer_c);
    ("flonum-contract", flonum_c);
    ("number-contract", number_c);
    ("float-complex-contract", float_complex_c);
    ("boolean-contract", boolean_c);
    ("string-contract", string_c);
    ("symbol-contract", symbol_c);
    ("char-contract", char_c);
    ("void-contract", void_c);
    ("null-contract", null_c);
  ]
