lib/contracts/contracts.mli: Liblang_runtime
