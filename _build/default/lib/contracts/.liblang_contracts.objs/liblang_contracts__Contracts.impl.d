lib/contracts/contracts.ml: Array Bytes Liblang_runtime List Printf String
