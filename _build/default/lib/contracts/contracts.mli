(** Higher-order contracts with blame (paper §6).

    A contract is a {e projection}: a procedure taking a value and the two
    blame parties and returning a (possibly wrapped) value.  Flat contracts
    check immediately; function contracts wrap the procedure and swap blame
    on the domain (the Findler–Felleisen discipline).  The typed language
    generates these from types ([type->contract]) to guard the
    typed/untyped boundary. *)

open Liblang_runtime.Value

exception Contract_violation of { blame : string; contract : string; value : value }

val blame_error : blame:string -> contract:string -> value -> 'a
val violation_message : exn -> string option

(** Apply a contract value to [v] with the given blame parties. *)
val project : value -> value -> pos:string -> neg:string -> value

val contract_name : value -> string

(** {1 Combinators} *)

(** A flat contract from a predicate. *)
val flat : name:string -> (value -> bool) -> value

val any_c : value
val none_c : name:string -> value

(** Disjunction (first-order check only). *)
val or_c : value list -> value

(** Function contract: wraps the value; domain blame swaps to the negative
    party (the caller), range blame stays positive. *)
val arrow : value list -> value -> value

val listof : value -> value
val pair_c : value -> value -> value
val vectorof : value -> value

(** {1 Flat contracts for the base types} *)

val integer_c : value
val flonum_c : value
val number_c : value
val float_complex_c : value
val boolean_c : value
val string_c : value
val symbol_c : value
val char_c : value
val void_c : value
val null_c : value

(** {1 Object-language primitives} *)

(** [contract], [flat-contract], [arrow-contract], … — exported by the base
    language so generated boundary code can construct contracts. *)
val prims : (string * value) list
