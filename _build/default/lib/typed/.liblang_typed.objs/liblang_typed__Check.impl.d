lib/typed/check.ml: Base_env Fun Hashtbl Liblang_expander Liblang_reader Liblang_runtime Liblang_stx List Option Printf String Types
