lib/typed/types.ml: Format Hashtbl Liblang_reader Liblang_stx List String
