lib/typed/types.mli: Format Hashtbl Liblang_reader Liblang_stx
