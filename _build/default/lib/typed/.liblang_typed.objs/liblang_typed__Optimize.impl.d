lib/typed/optimize.ml: Base_env Check Hashtbl Liblang_expander Liblang_modules Liblang_reader Liblang_stx List Option Types
