lib/typed/typedlang.ml: Boundary Check Hashtbl Liblang_expander Liblang_modules Liblang_reader Liblang_runtime Liblang_stx List Optimize Option Sys Types
