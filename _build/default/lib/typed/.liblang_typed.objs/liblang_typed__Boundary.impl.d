lib/typed/boundary.ml: Check Hashtbl Liblang_expander Liblang_modules Liblang_reader Liblang_runtime Liblang_stx List Printf Types
