lib/typed/base_env.ml: Hashtbl Liblang_modules Liblang_stx List Option Printf String Types
