lib/stx/stx.ml: Format Liblang_reader List Scope String
