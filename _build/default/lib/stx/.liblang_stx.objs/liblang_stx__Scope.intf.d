lib/stx/scope.mli: Set
