lib/stx/scope.ml: Int List Set String
