lib/stx/binding.ml: Hashtbl Int List Option Printf Scope String Stx
