lib/stx/binding.mli: Stx
