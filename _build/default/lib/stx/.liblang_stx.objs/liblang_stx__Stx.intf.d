lib/stx/stx.mli: Format Liblang_reader Scope
