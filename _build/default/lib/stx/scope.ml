(** Scopes for the sets-of-scopes hygiene model (Flatt 2016).  A scope is an
    opaque token; binders and references carry sets of them, and a reference
    resolves to the binder whose scope set is the largest subset of the
    reference's. *)

type t = int

let counter = ref 0

let fresh () =
  incr counter;
  !counter

let compare : t -> t -> int = Int.compare
let to_string (s : t) = "sc" ^ string_of_int s

module Set = struct
  include Set.Make (Int)

  let to_string s = "{" ^ String.concat "," (List.map to_string (elements s)) ^ "}"

  (** Symmetric difference on a single scope: used when applying a macro's
      introduction scope to its result (scopes present are removed, absent
      are added), which distinguishes macro-introduced syntax from syntax
      that came in through the macro's input. *)
  let flip sc s = if mem sc s then remove sc s else add sc s
end
