(** Syntax objects: Racket's attributed ASTs (paper §2.2).  A syntax object
    pairs a datum with lexical context (a scope set), a source location, and
    a table of syntax properties — the out-of-band channel that lets separate
    language extensions communicate without interfering (the paper's
    [syntax-property-put] / [syntax-property-get]). *)

module Datum = Liblang_reader.Datum
module Srcloc = Liblang_reader.Srcloc

type t = {
  e : e;
  scopes : Scope.Set.t;
  loc : Srcloc.t;
  props : (string * t) list;
}

and e =
  | Id of string           (** identifier *)
  | Atom of Datum.atom     (** non-symbol atom *)
  | List of t list
  | DotList of t list * t
  | Vec of t list

(* -- constructors -------------------------------------------------------- *)

let mk ?(scopes = Scope.Set.empty) ?(loc = Srcloc.none) ?(props = []) e =
  { e; scopes; loc; props }

let id ?scopes ?loc ?props name = mk ?scopes ?loc ?props (Id name)
let atom ?scopes ?loc a = mk ?scopes ?loc (Atom a)
let int_ ?loc n = atom ?loc (Datum.Int n)
let bool_ ?loc b = atom ?loc (Datum.Bool b)
let str_ ?loc s = atom ?loc (Datum.Str s)
let list ?scopes ?loc ?props xs = mk ?scopes ?loc ?props (List xs)

let rec of_datum ?(scopes = Scope.Set.empty) (a : Datum.annot) : t =
  let e =
    match a.Datum.d with
    | Datum.Atom (Datum.Sym s) -> Id s
    | Datum.Atom x -> Atom x
    | Datum.List xs -> List (List.map (of_datum ~scopes) xs)
    | Datum.DotList (xs, tl) -> DotList (List.map (of_datum ~scopes) xs, of_datum ~scopes tl)
    | Datum.Vec xs -> Vec (List.map (of_datum ~scopes) xs)
  in
  { e; scopes; loc = a.Datum.loc; props = [] }

let rec to_datum (s : t) : Datum.t =
  match s.e with
  | Id name -> Datum.Atom (Datum.Sym name)
  | Atom a -> Datum.Atom a
  | List xs -> Datum.List (List.map to_annot xs)
  | DotList (xs, tl) -> Datum.DotList (List.map to_annot xs, to_annot tl)
  | Vec xs -> Datum.Vec (List.map to_annot xs)

and to_annot s = { Datum.d = to_datum s; loc = s.loc }

(** [datum_to_syntax ~ctx d] converts a raw datum to syntax, taking lexical
    context (scopes) and source location from [ctx] — Racket's
    [datum->syntax]. *)
let datum_to_syntax ~ctx (d : Datum.t) : t =
  of_datum ~scopes:ctx.scopes { Datum.d; loc = ctx.loc }

let to_string s = Datum.to_string (to_datum s)
let pp fmt s = Format.pp_print_string fmt (to_string s)

(* -- scope operations ---------------------------------------------------- *)

let rec map_scopes f s =
  let e =
    match s.e with
    | Id _ | Atom _ -> s.e
    | List xs -> List (List.map (map_scopes f) xs)
    | DotList (xs, tl) -> DotList (List.map (map_scopes f) xs, map_scopes f tl)
    | Vec xs -> Vec (List.map (map_scopes f) xs)
  in
  { s with e; scopes = f s.scopes }

let add_scope sc s = map_scopes (Scope.Set.add sc) s
let remove_scope sc s = map_scopes (Scope.Set.remove sc) s
let flip_scope sc s = map_scopes (Scope.Set.flip sc) s

(* -- accessors ----------------------------------------------------------- *)

let is_id s = match s.e with Id _ -> true | _ -> false
let sym s = match s.e with Id name -> Some name | _ -> None

let sym_exn s =
  match s.e with
  | Id name -> name
  | _ -> invalid_arg ("Stx.sym_exn: not an identifier: " ^ to_string s)

(** [to_list] flattens a syntax list; Racket's [syntax->list].  Returns
    [None] for non-lists and improper lists. *)
let to_list s = match s.e with List xs -> Some xs | _ -> None

let is_sym name s = match s.e with Id n -> String.equal n name | _ -> false

(* -- syntax properties ---------------------------------------------------- *)

let property_get key s = List.assoc_opt key s.props

let property_put key v s = { s with props = (key, v) :: List.remove_assoc key s.props }

(** Copy all properties of [src] onto [dst]; convenient when a macro rewrites
    a form but must preserve out-of-band annotations. *)
let copy_properties ~src dst =
  List.fold_left (fun acc (k, v) -> property_put k v acc) dst src.props

(* -- structural equality (ignoring scopes, locations, properties) -------- *)

let equal_datum a b = Datum.equal (to_datum a) (to_datum b)
