(** Scopes for the sets-of-scopes hygiene model (Flatt 2016).

    A scope is an opaque token; binders and references carry sets of them,
    and a reference resolves to the binder whose scope set is the largest
    subset of the reference's. *)

type t = int

val fresh : unit -> t
val compare : t -> t -> int
val to_string : t -> string

module Set : sig
  include Set.S with type elt = t

  val to_string : t -> string

  (** Symmetric difference with a single scope: used when applying a
      transformer's introduction scope to its result. *)
  val flip : elt -> t -> t
end
