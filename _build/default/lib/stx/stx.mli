(** Syntax objects: attributed ASTs (paper §2.2).

    A syntax object pairs a datum with lexical context (a scope set), a
    source location, and a table of {e syntax properties} — the out-of-band
    channel that lets separate language extensions communicate without
    interfering ([syntax-property-put] / [syntax-property-get] in the
    paper). *)

module Datum = Liblang_reader.Datum
module Srcloc = Liblang_reader.Srcloc

type t = {
  e : e;
  scopes : Scope.Set.t;
  loc : Srcloc.t;
  props : (string * t) list;
}

and e =
  | Id of string           (** identifier *)
  | Atom of Datum.atom     (** non-symbol atom *)
  | List of t list
  | DotList of t list * t
  | Vec of t list

(** {1 Construction} *)

val mk : ?scopes:Scope.Set.t -> ?loc:Srcloc.t -> ?props:(string * t) list -> e -> t
val id : ?scopes:Scope.Set.t -> ?loc:Srcloc.t -> ?props:(string * t) list -> string -> t
val atom : ?scopes:Scope.Set.t -> ?loc:Srcloc.t -> Datum.atom -> t
val int_ : ?loc:Srcloc.t -> int -> t
val bool_ : ?loc:Srcloc.t -> bool -> t
val str_ : ?loc:Srcloc.t -> string -> t
val list : ?scopes:Scope.Set.t -> ?loc:Srcloc.t -> ?props:(string * t) list -> t list -> t

(** {1 Conversions} *)

val of_datum : ?scopes:Scope.Set.t -> Datum.annot -> t
val to_datum : t -> Datum.t
val to_annot : t -> Datum.annot

(** [datum_to_syntax ~ctx d] converts a raw datum to syntax, taking lexical
    context (scopes) and source location from [ctx] — Racket's
    [datum->syntax]. *)
val datum_to_syntax : ctx:t -> Datum.t -> t

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** {1 Scope operations (hygiene)} *)

val map_scopes : (Scope.Set.t -> Scope.Set.t) -> t -> t
val add_scope : Scope.t -> t -> t
val remove_scope : Scope.t -> t -> t

(** [flip_scope] adds the scope where absent and removes it where present;
    applied to a transformer's input and output, it distinguishes
    macro-introduced syntax from use-site syntax. *)
val flip_scope : Scope.t -> t -> t

(** {1 Accessors} *)

val is_id : t -> bool
val sym : t -> string option
val sym_exn : t -> string

(** Racket's [syntax->list]: [None] for non-lists and improper lists. *)
val to_list : t -> t list option

val is_sym : string -> t -> bool

(** {1 Syntax properties (the out-of-band channel, §3.1)} *)

val property_get : string -> t -> t option
val property_put : string -> t -> t -> t

(** Copy all properties of [src] onto the second argument; used when a
    rewrite must preserve out-of-band annotations. *)
val copy_properties : src:t -> t -> t

(** {1 Comparison} *)

(** Structural equality of the underlying datums (ignores scopes,
    locations, and properties). *)
val equal_datum : t -> t -> bool
