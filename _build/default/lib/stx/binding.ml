(** The global binding table of the sets-of-scopes expander.

    A binding associates (name, scope set) with a binding record carrying a
    globally unique id.  The paper relies on exactly this property (§5):
    "identifiers in Racket are given globally fresh names that are stable
    across modules during the expansion process", so an identifier-keyed
    table (here: a uid-keyed table) gives cross-module type environments for
    free. *)

exception Ambiguous of Stx.t

type t = { uid : int; name : string }

let uid_counter = ref 0

let fresh name =
  incr uid_counter;
  { uid = !uid_counter; name }

let equal a b = a.uid = b.uid
let compare a b = Int.compare a.uid b.uid
let to_string b = Printf.sprintf "%s.%d" b.name b.uid

(* name -> list of (scope set, binding) *)
let table : (string, (Scope.Set.t * t) list) Hashtbl.t = Hashtbl.create 1024

(** [add id b] records that [id]'s name, with [id]'s scope set, refers to
    [b].  Adding twice with the same name and scope set replaces (supports
    redefinition at a REPL-like top level). *)
let add (id : Stx.t) (b : t) =
  let name = Stx.sym_exn id in
  let existing = Option.value (Hashtbl.find_opt table name) ~default:[] in
  let existing = List.filter (fun (ss, _) -> not (Scope.Set.equal ss id.Stx.scopes)) existing in
  Hashtbl.replace table name ((id.Stx.scopes, b) :: existing)

(** Bind [id] to a fresh binding and return it. *)
let bind (id : Stx.t) : t =
  let b = fresh (Stx.sym_exn id) in
  add id b;
  b

(** Resolve a reference to a binding: among all bindings for the name whose
    scope set is a subset of the reference's, take the one with the largest
    scope set.  Raises {!Ambiguous} when the candidates aren't totally
    ordered by inclusion (the classic hygiene error). *)
let resolve (id : Stx.t) : t option =
  let name = Stx.sym_exn id in
  match Hashtbl.find_opt table name with
  | None -> None
  | Some entries ->
      let candidates =
        List.filter (fun (ss, _) -> Scope.Set.subset ss id.Stx.scopes) entries
      in
      let best =
        List.fold_left
          (fun acc (ss, b) ->
            match acc with
            | None -> Some (ss, b)
            | Some (ss', _) -> if Scope.Set.cardinal ss > Scope.Set.cardinal ss' then Some (ss, b) else acc)
          None candidates
      in
      (match best with
      | None -> None
      | Some (best_ss, b) ->
          if List.for_all (fun (ss, _) -> Scope.Set.subset ss best_ss) candidates then Some b
          else raise (Ambiguous id))

(** Racket's [free-identifier=?]: do two identifiers refer to the same
    binding?  Unbound identifiers compare by name. *)
let free_identifier_eq (a : Stx.t) (b : Stx.t) =
  match (resolve a, resolve b) with
  | Some ba, Some bb -> equal ba bb
  | None, None -> String.equal (Stx.sym_exn a) (Stx.sym_exn b)
  | _ -> false

(** Testing hook: forget all bindings.  Only used by the test suite to get
    reproducible resolution scenarios. *)
let reset_for_tests () = Hashtbl.reset table
