(** The global binding table of the sets-of-scopes expander.

    A binding associates (name, scope set) with a record carrying a
    globally unique id.  The paper relies on exactly this property (§5):
    "identifiers in Racket are given globally fresh names that are stable
    across modules during the expansion process", so identifier-keyed
    tables (type environments, namespaces) work across modules with no
    extra plumbing. *)

exception Ambiguous of Stx.t
(** raised by {!resolve} when candidate bindings are not totally ordered by
    scope-set inclusion — the classic hygiene error *)

type t = { uid : int; name : string }

val fresh : string -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string

(** [add id b] records that [id]'s name, under [id]'s scope set, refers to
    [b].  Re-adding with the same name and scope set replaces (supports
    module-level redefinition). *)
val add : Stx.t -> t -> unit

(** Bind [id] to a fresh binding and return it. *)
val bind : Stx.t -> t

(** Resolve a reference: among all bindings for the name whose scope set is
    a subset of the reference's, the one with the largest scope set. *)
val resolve : Stx.t -> t option

(** Racket's [free-identifier=?]: do two identifiers refer to the same
    binding?  Unbound identifiers compare by name. *)
val free_identifier_eq : Stx.t -> Stx.t -> bool

(** Testing hook: forget all bindings. *)
val reset_for_tests : unit -> unit
