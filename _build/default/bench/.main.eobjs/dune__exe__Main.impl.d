bench/main.ml: Analyze Array Bechamel Benchmark Harness Hashtbl Instance Liblang_core List Measure Printf Programs Staged Sys Test Time Toolkit Unix
