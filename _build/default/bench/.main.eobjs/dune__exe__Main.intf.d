bench/main.mli:
