bench/harness.ml: Fun Gc Liblang_core List Printf Programs String Unix
