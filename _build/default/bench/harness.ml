(** Benchmark harness: reproduces the shape of the paper's figures 6–9.

    Each benchmark program is compiled once per (variant) and then its module
    body is re-instantiated repeatedly under a monotonic wall clock, after a
    warmup run — the moral equivalent of the paper's 20-run averages.
    Checksums (the program's printed output) are compared across every
    variant so a mis-optimization cannot masquerade as a speedup. *)

module Core = Liblang_core.Core
module Modsys = Core.Modsys
module Interp = Core.Interp
module Naive = Core.Naive
module Optimize = Core.Optimize
module Prims = Core.Prims
module Value = Core.Value

type variant =
  | Naive_backend  (** AST-walking evaluator: the "other compiler" series *)
  | Base  (** untyped, closure-compiling evaluator *)
  | Typed  (** typed, optimizer + unboxing backend *)
  | Typed_O0  (** typed, optimizer disabled (ablation) *)
  | Typed_no_unbox  (** typed, rewrites on, backend unboxing off (ablation) *)

let variant_name = function
  | Naive_backend -> "naive"
  | Base -> "untyped"
  | Typed -> "typed"
  | Typed_O0 -> "typed-O0"
  | Typed_no_unbox -> "typed-noubx"

let is_typed = function Typed | Typed_O0 | Typed_no_unbox -> true | _ -> false

type result = { mean_ms : float; checksum : string; runs : int }

let now () = Unix.gettimeofday ()

let declare_variant (b : Programs.t) (v : variant) : Modsys.t =
  let lang, body = if is_typed v then ("typed/racket", b.Programs.typed) else ("racket", b.Programs.untyped) in
  let source = "#lang " ^ lang ^ "\n" ^ body in
  let name = Printf.sprintf "%s/%s" b.Programs.name (variant_name v) in
  let saved = !Optimize.enabled in
  Optimize.enabled := (v <> Typed_O0);
  Fun.protect
    ~finally:(fun () -> Optimize.enabled := saved)
    (fun () -> Modsys.declare ~name source)

(* Run the module body once, under the variant's evaluation regime, and
   return (checksum, elapsed seconds). *)
let run_once (m : Modsys.t) (v : variant) : string * float =
  let saved_eval = !Modsys.evaluator in
  let saved_unbox = !Interp.unboxing_enabled in
  (match v with
  | Naive_backend -> Modsys.evaluator := Naive.eval_top
  | _ -> Modsys.evaluator := Interp.eval_top);
  (match v with
  | Typed_no_unbox -> Interp.unboxing_enabled := false
  | _ -> Interp.unboxing_enabled := true);
  Fun.protect
    ~finally:(fun () ->
      Modsys.evaluator := saved_eval;
      Interp.unboxing_enabled := saved_unbox)
    (fun () ->
      m.Modsys.instantiated <- false;
      let out, dt =
        Prims.with_captured_output (fun () ->
            let t0 = now () in
            Modsys.instantiate m;
            now () -. t0)
      in
      (out, dt))

(** Measure one benchmark under several variants at once: warmup each,
    then alternate single runs round-robin (so machine noise affects all
    variants alike) and report the median — the moral equivalent of the
    paper's 20-run averages. *)
let measure_variants ?(rounds = 9) (b : Programs.t) (variants : variant list)
    : (variant * result) list =
  let ms = List.map (fun v -> (v, declare_variant b v)) variants in
  let firsts = List.map (fun (v, m) -> (v, run_once m v)) ms in
  let samples = List.map (fun v -> (v, ref [])) variants in
  for _ = 1 to rounds do
    List.iter
      (fun (v, m) ->
        Gc.minor ();
        let _, dt = run_once m v in
        let l = List.assoc v samples in
        l := dt :: !l)
      ms
  done;
  let median l = List.nth (List.sort compare l) (List.length l / 2) in
  List.map
    (fun v ->
      let checksum, _ = List.assoc v firsts in
      let l = !(List.assoc v samples) in
      { mean_ms = 1000.0 *. median l; checksum; runs = rounds } |> fun r -> (v, r))
    variants

let measure ?(budget = 0.5) (b : Programs.t) (v : variant) : result =
  ignore budget;
  List.assoc v (measure_variants b [ v ])

(* -- reporting --------------------------------------------------------------- *)

let line = String.make 78 '-'

let check_agreement name (results : (variant * result) list) =
  match results with
  | [] -> ()
  | (_, r0) :: rest ->
      List.iter
        (fun (v, r) ->
          if not (String.equal r.checksum r0.checksum) then
            Printf.printf "!! %s: checksum mismatch under %s: %s vs %s\n" name (variant_name v)
              r.checksum r0.checksum)
        rest

(** Run every benchmark of [figure] under [variants]; print a table of
    runtimes normalized to the [Base] series (smaller is better, as in the
    paper's figures). *)
let run_figure ?rounds ~title ~figure ~(variants : variant list) () =
  Printf.printf "\n%s\n%s (normalized to untyped = 1.00; smaller is better)\n%s\n" line title line;
  Printf.printf "%-14s %-10s" "benchmark" "suite";
  List.iter (fun v -> Printf.printf "%14s" (variant_name v)) variants;
  Printf.printf "%14s\n" "untyped(ms)";
  let speedups = ref [] in
  List.iter
    (fun (b : Programs.t) ->
      let results = measure_variants ?rounds b variants in
      check_agreement b.Programs.name results;
      let base_ms =
        match List.assoc_opt Base results with
        | Some r -> r.mean_ms
        | None -> (snd (List.hd results)).mean_ms
      in
      Printf.printf "%-14s %-10s" b.Programs.name b.Programs.suite;
      List.iter
        (fun v ->
          let r = List.assoc v results in
          Printf.printf "%14.2f" (r.mean_ms /. base_ms))
        variants;
      Printf.printf "%14.1f\n" base_ms;
      (match List.assoc_opt Typed results with
      | Some t -> speedups := (b.Programs.name, (base_ms -. t.mean_ms) /. t.mean_ms *. 100.0) :: !speedups
      | None -> ());
      flush stdout)
    (Programs.by_figure figure);
  List.rev !speedups
