(** Benchmark harness: reproduces the shape of the paper's figures 6–9.

    Each benchmark program is compiled once per (variant) and then its module
    body is re-instantiated repeatedly under a monotonic wall clock, after a
    warmup run — the moral equivalent of the paper's 20-run averages.
    Checksums (the program's printed output) are compared across every
    variant so a mis-optimization cannot masquerade as a speedup. *)

module Core = Liblang_core.Core
module Modsys = Core.Modsys
module Interp = Core.Interp
module Naive = Core.Naive
module Optimize = Core.Optimize
module Zcfa = Core.Zcfa
module Prims = Core.Prims
module Value = Core.Value
module Json = Core.Json

type variant =
  | Naive_backend  (** AST-walking evaluator: the "other compiler" series *)
  | Base  (** untyped, closure-compiling evaluator *)
  | Typed  (** typed, optimizer + unboxing backend *)
  | Typed_O0  (** typed, optimizer disabled (ablation) *)
  | Typed_no_unbox  (** typed, rewrites on, backend unboxing off (ablation) *)
  | Typed_no_cfa  (** typed, optimizer on but 0CFA facts off (flow-analysis ablation) *)

let variant_name = function
  | Naive_backend -> "naive"
  | Base -> "untyped"
  | Typed -> "typed"
  | Typed_O0 -> "typed-O0"
  | Typed_no_unbox -> "typed-noubx"
  | Typed_no_cfa -> "typed-nocfa"

let is_typed = function
  | Typed | Typed_O0 | Typed_no_unbox | Typed_no_cfa -> true
  | _ -> false

type result = {
  mean_ms : float;
  checksum : string;
  runs : int;
  rewrites : (string * int) list;
      (** optimizer rewrite-rule firings recorded while compiling this
          variant (empty for untyped variants) — lets BENCH_fig6.json tie
          each speedup to the rules that produced it *)
  cached : (float * float) option;
      (** [(compile_cold_ms, compile_warm_ms)] when the [--cached] series
          is on: the same source compiled twice through the artifact
          store (fresh temp cache dir), with the resolver's session state
          reset in between — so the warm number is the §5 replay path
          (load from artifact, no expansion or typechecking) and the cold
          number is compile-from-source plus the artifact write *)
  expand_ms : float;
      (** expansion-only front-end time for this variant's source: median
          of repeated [Modsys.expand_source] calls (read + expand, no
          typecheck/compile/instantiate for untyped variants; typed
          variants include whatever their language runs during module
          expansion).  This is the number the hygiene-at-speed series
          tracks. *)
  gc_minor_words : float;
      (** GC pressure of the median instantiation run: words allocated in
          the minor heap ([Gc.quick_stat] delta around the run).  Tracks
          allocation-rate regressions that wall-clock medians can hide
          (an optimization that trades time for allocation shows up here
          first). *)
  gc_major_words : float;  (** same, words promoted to / allocated in the major heap *)
  analysis_ms : float;
      (** time spent in the 0CFA pass ([phase.analyze]) while compiling
          this variant — 0.0 for untyped variants and for
          [Typed_no_cfa], whose whole point is to skip the pass *)
  vm : vm_result option;
      (** the bytecode-VM series ([--engine vm]): the same module body
          re-instantiated under {!Liblang_backend.Vm} instead of the
          closure-compiling interpreter.  [None] for the naive backend
          row (the AST walker stands in for other systems; it has no VM
          analogue).  The checksum is compared against the interpreter's
          — a divergent VM fails the run like any other mismatch — and
          [vm_gc_minor_words] feeds the allocation gate: inlined-loop
          float kernels must run allocation-free under the VM. *)
}

and vm_result = {
  vm_ms : float;  (** median instantiate wall-clock under the VM *)
  vm_checksum : string;
  vm_gc_minor_words : float;
  vm_gc_major_words : float;
}

let now () = Unix.gettimeofday ()

(* -- --filter ----------------------------------------------------------------- *)

(** When set (the driver's [--filter REGEX]), only benchmarks whose name
    matches the (unanchored) regex are measured — across the figure rows,
    the expansion stress family and the parallel-build family alike.  CI
    smoke uses this to run a representative subset instead of the full
    figure.  A top-level [|] is alternation ([Str] would want [\|]; we
    split on it so the conventional spelling works): [--filter
    'sumfp|par-'] keeps [sumfp] and the parallel projects. *)
let filter_res : Str.regexp list option ref = ref None

let set_filter (s : string) =
  filter_res := Some (List.map Str.regexp (String.split_on_char '|' s))

let matches_filter (name : string) : bool =
  match !filter_res with
  | None -> true
  | Some res ->
      List.exists
        (fun re -> try ignore (Str.search_forward re name 0); true with Not_found -> false)
        res

(* -- the --cached compile series ---------------------------------------------- *)

(** Set by the driver's [--cached] flag: additionally compile each
    variant twice through the artifact store and record cold/warm
    compile times in the figure JSON. *)
let cached_series = ref false

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let cached_tmp_counter = ref 0

(** Compile one variant of [b] twice through a fresh artifact store and
    return [(cold_ms, warm_ms)].  The source is written to a temp [.scm]
    file so it takes the file-resolver path ([Compiled.compile_file]);
    [Compiled.reset_session] between the two runs simulates a fresh
    process, so the warm run actually reads the artifact back. *)
let measure_cached (b : Programs.t) (v : variant) : float * float =
  let lang, body =
    if is_typed v then ("typed/racket", b.Programs.typed) else ("racket", b.Programs.untyped)
  in
  let source = "#lang " ^ lang ^ "\n" ^ body in
  incr cached_tmp_counter;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "liblang-bench-%d-%d" (Unix.getpid ()) !cached_tmp_counter)
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error _ -> ());
  let src_path = Filename.concat dir "prog.scm" in
  let oc = open_out_bin src_path in
  output_string oc source;
  close_out oc;
  let cache = Filename.concat dir "cache" in
  let saved = !Optimize.enabled in
  let saved_cfa = !Zcfa.enabled in
  Optimize.enabled := v <> Typed_O0;
  Zcfa.enabled := v <> Typed_no_cfa;
  Fun.protect ~finally:(fun () ->
      Optimize.enabled := saved;
      Zcfa.enabled := saved_cfa;
      rm_rf dir)
  @@ fun () ->
  let compile_once () =
    Core.Compiled.reset_session ();
    let t0 = now () in
    Core.Compiled.with_cache_dir cache (fun () -> ignore (Core.Compiled.compile_file src_path));
    now () -. t0
  in
  let cold = compile_once () in
  let warm = compile_once () in
  Core.Compiled.reset_session ();
  (1000.0 *. cold, 1000.0 *. warm)

(** Compile one variant of a benchmark; returns the module, the
    optimizer's per-rule rewrite counts for that compilation, and the
    time spent in the 0CFA pass (the [phase.analyze] timer, ms). *)
let declare_variant_counted (b : Programs.t) (v : variant) :
    Modsys.t * (string * int) list * float =
  let lang, body = if is_typed v then ("typed/racket", b.Programs.typed) else ("racket", b.Programs.untyped) in
  let source = "#lang " ^ lang ^ "\n" ^ body in
  let name = Printf.sprintf "%s/%s" b.Programs.name (variant_name v) in
  let saved = !Optimize.enabled in
  let saved_cfa = !Zcfa.enabled in
  Optimize.enabled := (v <> Typed_O0);
  Zcfa.enabled := (v <> Typed_no_cfa);
  Optimize.reset_stats ();
  let metrics = Core.Metrics.create () in
  let m =
    Fun.protect
      ~finally:(fun () ->
        Optimize.enabled := saved;
        Zcfa.enabled := saved_cfa)
      (fun () -> Core.Metrics.with_collector metrics (fun () -> Modsys.declare ~name source))
  in
  (m, Optimize.stats_alist (), Core.Metrics.get_ms metrics "phase.analyze")

let declare_variant b v : Modsys.t =
  let m, _, _ = declare_variant_counted b v in
  m

(* Run the module body once, under the variant's evaluation regime, and
   return (checksum, elapsed seconds).  [~vm:true] swaps in the bytecode
   backend (the CLI's [--engine vm]) for the same variant: lowering
   still honours the variant's unboxing toggle, so e.g. typed-noubx/vm
   measures the VM without its float lane. *)
let run_once ?(vm = false) (m : Modsys.t) (v : variant) : string * float =
  let saved_eval = !Modsys.evaluator in
  let saved_unbox = !Interp.unboxing_enabled in
  let saved_engine = !Core.Vm.Engine.current in
  (if vm then begin
     Modsys.evaluator := Core.Vm.eval_top;
     Core.Vm.Engine.current := Core.Vm.Engine.Vm
   end
   else
     match v with
     | Naive_backend -> Modsys.evaluator := Naive.eval_top
     | _ -> Modsys.evaluator := Interp.eval_top);
  (match v with
  | Typed_no_unbox -> Interp.unboxing_enabled := false
  | _ -> Interp.unboxing_enabled := true);
  Fun.protect
    ~finally:(fun () ->
      Modsys.evaluator := saved_eval;
      Interp.unboxing_enabled := saved_unbox;
      Core.Vm.Engine.current := saved_engine)
    (fun () ->
      m.Modsys.instantiated <- false;
      let out, dt =
        Prims.with_captured_output (fun () ->
            let t0 = now () in
            Modsys.instantiate m;
            now () -. t0)
      in
      (out, dt))

(* -- the expansion-only series -------------------------------------------- *)

let expand_name_counter = ref 0

(** Median expansion-only time for [source] (a full [#lang] program) in
    milliseconds: [Modsys.expand_source] under a monotonic clock, after
    one warmup, with a fresh module name per call so no session state is
    reused.  The binding table is snapshotted before and restored after:
    the throwaway expansions would otherwise keep growing the per-name
    binder lists that every *later* measurement's resolutions scan,
    slowly poisoning the rest of the figure (most visibly the
    [compile_cold_ms] series). *)
let measure_expand_ms ?(rounds = 3) ~name (source : string) : float =
  let snap = Core.Binding.snapshot () in
  Fun.protect
    ~finally:(fun () -> Core.Binding.restore snap)
    (fun () ->
      let once () =
        incr expand_name_counter;
        let n = Printf.sprintf "%s-expand-%d" name !expand_name_counter in
        let t0 = now () in
        ignore (Core.Modsys.expand_source ~name:n source);
        now () -. t0
      in
      ignore (once ());
      let samples = List.sort compare (List.init rounds (fun _ -> once ())) in
      1000.0 *. List.nth samples (rounds / 2))

let variant_source (b : Programs.t) (v : variant) : string =
  let lang, body =
    if is_typed v then ("typed/racket", b.Programs.typed) else ("racket", b.Programs.untyped)
  in
  "#lang " ^ lang ^ "\n" ^ body

(** Measure one benchmark under several variants at once: warmup each,
    then alternate single runs round-robin (so machine noise affects all
    variants alike) and report the median — the moral equivalent of the
    paper's 20-run averages. *)
let measure_variants ?(rounds = 9) (b : Programs.t) (variants : variant list)
    : (variant * result) list =
  (* the cached compile series runs first: Compiled.reset_session clears
     the module registry, so it must finish before the variants below are
     declared for the runtime measurements *)
  let cached_results =
    List.map
      (fun v -> (v, if !cached_series then Some (measure_cached b v) else None))
      variants
  in
  let expand_rounds = min 3 (max 1 rounds) in
  let expands =
    List.map
      (fun v ->
        (v, measure_expand_ms ~rounds:expand_rounds ~name:b.Programs.name (variant_source b v)))
      variants
  in
  let ms = List.map (fun v -> (v, declare_variant_counted b v)) variants in
  let firsts = List.map (fun (v, (m, _, _)) -> (v, run_once m v)) ms in
  (* the naive backend has no lowering pipeline, so it is the one variant
     without a bytecode series *)
  let has_vm v = v <> Naive_backend in
  let vm_firsts =
    List.filter_map
      (fun (v, (m, _, _)) -> if has_vm v then Some (v, run_once ~vm:true m v) else None)
      ms
  in
  let samples = List.map (fun v -> (v, ref [])) variants in
  let gc_samples = List.map (fun v -> (v, ref [])) variants in
  let vm_samples = List.map (fun v -> (v, ref [])) variants in
  let vm_gc_samples = List.map (fun v -> (v, ref [])) variants in
  for _ = 1 to rounds do
    List.iter
      (fun (v, (m, _, _)) ->
        Gc.minor ();
        (* allocation deltas around the run: the GC-pressure series *)
        let s0 = Gc.quick_stat () in
        let _, dt = run_once m v in
        let s1 = Gc.quick_stat () in
        let l = List.assoc v samples in
        l := dt :: !l;
        let g = List.assoc v gc_samples in
        g :=
          ( s1.Gc.minor_words -. s0.Gc.minor_words,
            s1.Gc.major_words -. s0.Gc.major_words )
          :: !g;
        if has_vm v then begin
          Gc.minor ();
          let s0 = Gc.quick_stat () in
          let _, dt = run_once ~vm:true m v in
          let s1 = Gc.quick_stat () in
          let l = List.assoc v vm_samples in
          l := dt :: !l;
          let g = List.assoc v vm_gc_samples in
          g :=
            ( s1.Gc.minor_words -. s0.Gc.minor_words,
              s1.Gc.major_words -. s0.Gc.major_words )
            :: !g
        end)
      ms
  done;
  let median l = List.nth (List.sort compare l) (List.length l / 2) in
  List.map
    (fun v ->
      let checksum, _ = List.assoc v firsts in
      let l = !(List.assoc v samples) in
      let gl = !(List.assoc v gc_samples) in
      let _, rewrites, analysis_ms = List.assoc v ms in
      let cached = List.assoc v cached_results in
      let expand_ms = List.assoc v expands in
      let vm =
        match List.assoc_opt v vm_firsts with
        | None -> None
        | Some (vm_checksum, _) ->
            let vl = !(List.assoc v vm_samples) in
            let vgl = !(List.assoc v vm_gc_samples) in
            Some
              {
                vm_ms = 1000.0 *. median vl;
                vm_checksum;
                vm_gc_minor_words = median (List.map fst vgl);
                vm_gc_major_words = median (List.map snd vgl);
              }
      in
      {
        mean_ms = 1000.0 *. median l;
        checksum;
        runs = rounds;
        rewrites;
        cached;
        expand_ms;
        gc_minor_words = median (List.map fst gl);
        gc_major_words = median (List.map snd gl);
        analysis_ms;
        vm;
      }
      |> fun r -> (v, r))
    variants

let measure ?(budget = 0.5) (b : Programs.t) (v : variant) : result =
  ignore budget;
  List.assoc v (measure_variants b [ v ])

(* -- reporting --------------------------------------------------------------- *)

let line = String.make 78 '-'

(** Checksum mismatches observed across every figure run so far; the
    driver exits nonzero when this is nonempty (CI treats a divergent
    variant as a correctness failure, not a perf artifact). *)
let checksum_mismatches : (string * variant) list ref = ref []

let check_agreement name (results : (variant * result) list) =
  match results with
  | [] -> ()
  | (_, r0) :: rest ->
      List.iter
        (fun (v, r) ->
          if not (String.equal r.checksum r0.checksum) then begin
            checksum_mismatches := (name, v) :: !checksum_mismatches;
            Printf.printf "!! %s: checksum mismatch under %s: %s vs %s\n" name (variant_name v)
              r.checksum r0.checksum
          end)
        rest;
      (* the differential contract: under every variant, the bytecode VM
         must produce the same output as the tree-walking interpreter *)
      List.iter
        (fun (v, r) ->
          match r.vm with
          | Some vm when not (String.equal vm.vm_checksum r.checksum) ->
              checksum_mismatches := (name, v) :: !checksum_mismatches;
              Printf.printf "!! %s: vm/interp checksum mismatch under %s: %s vs %s\n" name
                (variant_name v) vm.vm_checksum r.checksum
          | _ -> ())
        results

(** One measured benchmark: the program and its per-variant results. *)
type row = { program : Programs.t; results : (variant * result) list }

(** Allocation-gate failures: float kernels whose typed/vm series
    allocated past its budget (a mis-lowering — the unboxed register
    lanes should carry the whole inner loop); the driver exits nonzero
    when this is nonempty, like {!checksum_mismatches}. *)
let alloc_gate_failures : (string * float) list ref = ref []

(* Per-run minor-word budgets for the inlined-loop float kernels under
   the bytecode VM.  sumfp and mbrot run their inner loops entirely on
   the float registers: measured typed/vm gc_minor_words is exactly 0,
   vs ~12.6M (sumfp) / ~4.5M (mbrot) words for the unboxing interpreter
   — the budget only needs to be far below the boxed figure.  heapsort's
   sift loops are register-resident too, but its residue is structural:
   ~30k generic sift-down! activations plus fill-random!'s per-slot
   boxing put the measured floor at ~7.3M words (vs ~23.6M interp); the
   10M budget still fails if the loops fall back to boxed locals. *)
let vm_alloc_budgets =
  [
    ("sumfp", 50_000.0);
    ("mbrot", 50_000.0);
    ("heapsort", 10_000_000.0);
    (* the 0CFA vector kernels: direct calls + closure unboxing +
       bound-check elision put typed/vm at ~3.1M (nbody) / ~4.5M
       (spectralnorm) minor words, vs ~7.1M / ~5.5M for typed-nocfa —
       the budgets sit between the two, so losing the flow-driven wins
       trips the gate *)
    ("nbody", 5_000_000.0);
    ("spectralnorm", 5_000_000.0);
  ]

(** The allocation gate over a figure's measured rows: under the
    bytecode VM the typed variant of each budgeted float kernel must
    stay within its minor-words budget. *)
let check_vm_allocation (rows : row list) =
  List.iter
    (fun row ->
      let name = row.program.Programs.name in
      match List.assoc_opt name vm_alloc_budgets with
      | None -> ()
      | Some budget -> (
          match List.assoc_opt Typed row.results with
          | Some { vm = Some vm; _ } when vm.vm_gc_minor_words > budget ->
              alloc_gate_failures := (name, vm.vm_gc_minor_words) :: !alloc_gate_failures;
              Printf.printf
                "!! %s: typed/vm gc_minor_words %.0f exceeds the %.0f-word allocation budget\n"
                name vm.vm_gc_minor_words budget
          | _ -> ()))
    rows

(* -- the expected-rewrite gate -------------------------------------------------

   The flow-analysis counterpart of the allocation gate: the 0CFA-fed
   rewrite classes must fire on the [Typed] variant of the benchmarks
   below (a silently inert analysis cannot pass), and must all stay at
   zero on [Typed_no_cfa] (facts leaking past the ablation switch cannot
   pass either).  The driver exits nonzero on any violation, like
   {!checksum_mismatches}. *)

(** Every rewrite rule fed by the 0CFA facts table (as opposed to the
    type-driven rules like [fl:+] or [vec:ref]). *)
let cfa_rules = [ "opt:direct-call"; "opt:closure-unbox"; "vec:ref!"; "vec:set!" ]

(** Per-benchmark floors: rules that must fire at least once on the
    [Typed] variant.  spectralnorm's [mulAv] keeps its matrix-element
    accessor as a single-call-site [let]-bound lambda precisely so
    closure unboxing has a benchmarked target. *)
let expected_rewrites =
  [
    ("spectralnorm", [ "opt:direct-call"; "opt:closure-unbox"; "vec:ref!"; "vec:set!" ]);
    ("nbody", [ "opt:direct-call" ]);
  ]

let rewrite_gate_failures : (string * string) list ref = ref []

let check_expected_rewrites (rows : row list) =
  let count rules rule = match List.assoc_opt rule rules with Some n -> n | None -> 0 in
  List.iter
    (fun row ->
      let name = row.program.Programs.name in
      (match (List.assoc_opt name expected_rewrites, List.assoc_opt Typed row.results) with
      | Some rules, Some r ->
          List.iter
            (fun rule ->
              if count r.rewrites rule = 0 then begin
                rewrite_gate_failures := (name, rule) :: !rewrite_gate_failures;
                Printf.printf "!! %s: expected rewrite %s did not fire on typed\n" name rule
              end)
            rules
      | _ -> ());
      match List.assoc_opt Typed_no_cfa row.results with
      | Some r ->
          List.iter
            (fun rule ->
              let n = count r.rewrites rule in
              if n > 0 then begin
                rewrite_gate_failures := (name, rule) :: !rewrite_gate_failures;
                Printf.printf "!! %s: 0CFA-fed rewrite %s fired %d times with the analysis off\n"
                  name rule n
              end)
            cfa_rules
      | None -> ())
    rows

(** Run every benchmark of [figure] under [variants]; print a table of
    runtimes normalized to the [Base] series (smaller is better, as in the
    paper's figures).  Returns the raw rows so the driver can also emit
    them as machine-readable JSON (see {!json_of_figure}).  [?only]
    restricts the figure to the named benchmarks (on top of the user's
    [--filter]) — the fig6 driver uses it to fold the two vector kernels
    into BENCH_fig6.json without dragging in the rest of fig7. *)
let run_figure ?rounds ?only ~title ~figure ~(variants : variant list) () : row list =
  Printf.printf "\n%s\n%s (normalized to untyped = 1.00; smaller is better)\n%s\n" line title line;
  Printf.printf "%-14s %-10s" "benchmark" "suite";
  List.iter (fun v -> Printf.printf "%14s" (variant_name v)) variants;
  Printf.printf "%14s\n" "untyped(ms)";
  let rows = ref [] in
  List.iter
    (fun (b : Programs.t) ->
      let results = measure_variants ?rounds b variants in
      check_agreement b.Programs.name results;
      let base_ms =
        match List.assoc_opt Base results with
        | Some r -> r.mean_ms
        | None -> (snd (List.hd results)).mean_ms
      in
      Printf.printf "%-14s %-10s" b.Programs.name b.Programs.suite;
      List.iter
        (fun v ->
          let r = List.assoc v results in
          Printf.printf "%14.2f" (r.mean_ms /. base_ms))
        variants;
      Printf.printf "%14.1f\n" base_ms;
      rows := { program = b; results } :: !rows;
      flush stdout)
    (List.filter
       (fun (b : Programs.t) ->
         (match only with
         | None -> true
         | Some names -> List.mem b.Programs.name names)
         && matches_filter b.Programs.name)
       (Programs.by_figure figure));
  List.rev !rows

(* -- the expansion stress figure ---------------------------------------------

   The macro-heavy stress family ([Programs.expand_family]) is measured
   expansion-only (the evaluator never sees most of these programs'
   cost), and each program is additionally run once so its printed
   checksum can be compared against the generator's closed-form expected
   value — a mangled expansion cannot pass as a speedup. *)

type expand_row = {
  stress : Programs.t;
  stress_expand_ms : float;
  stress_checksum : string;
  stress_expected : string;
}

let run_expand_figure ?(rounds = 3) () : expand_row list =
  Printf.printf "\n%s\nExpansion stress family (expansion-only; the hygiene-at-speed series)\n%s\n"
    line line;
  Printf.printf "%-14s %-10s %14s %12s %10s\n" "benchmark" "suite" "expand(ms)" "checksum" "ok";
  List.map
    (fun ((b : Programs.t), expected) ->
      let source = variant_source b Base in
      let expand_ms = measure_expand_ms ~rounds ~name:b.Programs.name source in
      let m = declare_variant b Base in
      let checksum, _ = run_once m Base in
      if not (String.equal checksum expected) then begin
        checksum_mismatches := (b.Programs.name, Base) :: !checksum_mismatches;
        Printf.printf "!! %s: expected checksum %s, got %s\n" b.Programs.name expected checksum
      end;
      Printf.printf "%-14s %-10s %14.2f %12s %10s\n" b.Programs.name b.Programs.suite expand_ms
        checksum
        (if String.equal checksum expected then "yes" else "NO");
      flush stdout;
      { stress = b; stress_expand_ms = expand_ms; stress_checksum = checksum; stress_expected = expected })
    (List.filter
       (fun ((b : Programs.t), _) -> matches_filter b.Programs.name)
       Programs.expand_family)

let json_of_expand_rows (rows : expand_row list) : Json.t =
  Json.Arr
    (List.map
       (fun r ->
         Json.Obj
           [
             ("name", Json.Str r.stress.Programs.name);
             ("expand_ms", Json.Num r.stress_expand_ms);
             ("checksum", Json.Str r.stress_checksum);
             ("expected", Json.Str r.stress_expected);
             ("ok", Json.Bool (String.equal r.stress_checksum r.stress_expected));
           ])
       rows)

(* -- the parallel-build figure (-j) -------------------------------------------

   The domain-parallel build driver measured over synthetic require
   graphs ({!Liblang_compiled.Genproj}): each shape is built cold twice —
   [-j 1] and [-j jobs] — into separate fresh cache dirs, the artifact
   sets are compared byte-for-byte, and the program is then warm-run so
   its printed value can be checked against the generator's closed form.
   A speedup can only come from the domain pool; a determinism or
   correctness slip fails the run like any other checksum mismatch. *)

type par_row = {
  par_shape : string;
  par_modules : int;
  par_jobs : int;  (** worker domains of the parallel build *)
  par_graph_ms : float;  (** require-graph scan (parallel build) *)
  par_serial_ms : float;  (** cold [-j 1] wall clock, whole build *)
  par_parallel_ms : float;  (** cold [-j jobs] wall clock, whole build *)
  par_tasks : int;
  par_lock_waits : int;
  par_identical : bool;  (** artifact stores byte-identical across -j1/-jN *)
  par_checksum : string;
  par_expected : string;
}

(* Sorted (file name, content digest) list of a cache dir — the byte-parity
   comparison between the serial and parallel stores. *)
let dir_digests (dir : string) : (string * string) list =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | files ->
      let files = Array.to_list files in
      List.filter_map
        (fun f ->
          let p = Filename.concat dir f in
          if Sys.is_directory p then None else Some (f, Digest.to_hex (Digest.file p)))
        (List.sort String.compare files)

let run_parallel_figure ~(jobs : int) ~(smoke : bool) () : par_row list =
  let module Build = Core.Compiled.Build in
  let module Genproj = Core.Compiled.Genproj in
  let n = if smoke then 8 else 24 in
  let depth = if smoke then 6 else 10 in
  Printf.printf
    "\n%s\nParallel separate compilation (-j %d, %d cores): cold builds over %d-module graphs\n%s\n"
    line jobs (Domain.recommended_domain_count ()) n line;
  Printf.printf "%-14s %12s %12s %12s %8s %10s %6s\n" "shape" "graph(ms)" "-j1(ms)"
    (Printf.sprintf "-j%d(ms)" jobs) "speedup" "identical" "ok";
  List.filter_map
    (fun shape ->
      let shape_name = Genproj.shape_to_string shape in
      let name = "par-" ^ shape_name in
      if not (matches_filter name) then None
      else begin
        incr cached_tmp_counter;
        let dir =
          Filename.concat (Filename.get_temp_dir_name ())
            (Printf.sprintf "liblang-bench-par-%d-%d" (Unix.getpid ()) !cached_tmp_counter)
        in
        (try Unix.mkdir dir 0o755 with Unix.Unix_error _ -> ());
        let root, expected = Genproj.generate ~dir ~shape ~n ~depth () in
        let expected = string_of_int expected in
        let cache_s = Filename.concat dir "cache-serial" in
        let cache_p = Filename.concat dir "cache-parallel" in
        Fun.protect
          ~finally:(fun () ->
            Core.Compiled.reset_session ();
            rm_rf dir)
        @@ fun () ->
        let build ~jobs cache =
          Core.Compiled.reset_session ();
          let t0 = now () in
          let r = Core.Compiled.with_cache_dir cache (fun () -> Build.build ~jobs [ root ]) in
          (r, 1000.0 *. (now () -. t0))
        in
        let rs, serial_ms = build ~jobs:1 cache_s in
        let rp, parallel_ms = build ~jobs cache_p in
        let identical = dir_digests cache_s = dir_digests cache_p in
        (* the checksum gate: warm-acquire the program through the serial
           store and instantiate it; it must print the closed form *)
        Core.Compiled.reset_session ();
        let checksum =
          Core.Compiled.with_cache_dir cache_s (fun () ->
              let m = Core.Compiled.compile_file root in
              fst (Prims.with_captured_output (fun () -> Modsys.instantiate m)))
        in
        let ok =
          Build.ok rs && Build.ok rp && identical && String.equal checksum expected
        in
        if not ok then checksum_mismatches := (name, Base) :: !checksum_mismatches;
        Printf.printf "%-14s %12.1f %12.1f %12.1f %7.2fx %10s %6s\n" shape_name
          rp.Build.graph_ms serial_ms parallel_ms
          (serial_ms /. parallel_ms)
          (if identical then "yes" else "NO")
          (if ok then "yes" else "NO");
        flush stdout;
        Some
          {
            par_shape = shape_name;
            par_modules = n;
            par_jobs = rp.Build.jobs;
            par_graph_ms = rp.Build.graph_ms;
            par_serial_ms = serial_ms;
            par_parallel_ms = parallel_ms;
            par_tasks = rp.Build.tasks;
            par_lock_waits = rp.Build.lock_waits;
            par_identical = identical;
            par_checksum = checksum;
            par_expected = expected;
          }
      end)
    [ Genproj.Wide; Genproj.Diamond; Genproj.Chain ]

let json_of_par_rows ~(jobs : int) (rows : par_row list) : Json.t =
  Json.Obj
    [
      ("jobs", Json.Num (float_of_int jobs));
      (* a -jN speedup needs >= N cores; recording the machine's count
         makes a speedup < 1 on a 1-core CI box interpretable *)
      ("cores", Json.Num (float_of_int (Domain.recommended_domain_count ())));
      ( "projects",
        Json.Arr
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("shape", Json.Str r.par_shape);
                   ("modules", Json.Num (float_of_int r.par_modules));
                   ("jobs", Json.Num (float_of_int r.par_jobs));
                   ("graph_ms", Json.Num r.par_graph_ms);
                   ("compile_serial_ms", Json.Num r.par_serial_ms);
                   ("compile_parallel_ms", Json.Num r.par_parallel_ms);
                   ("speedup", Json.Num (r.par_serial_ms /. r.par_parallel_ms));
                   ("tasks", Json.Num (float_of_int r.par_tasks));
                   ("lock_waits", Json.Num (float_of_int r.par_lock_waits));
                   ("artifacts_identical", Json.Bool r.par_identical);
                   ("checksum", Json.Str r.par_checksum);
                   ("expected", Json.Str r.par_expected);
                   ("ok", Json.Bool (String.equal r.par_checksum r.par_expected && r.par_identical));
                 ])
             rows) );
    ]

(* -- the --serve series (concurrent compile server under mixed load) -----------

   The compile-server daemon measured end to end, twice — once with one
   request worker and once with a pool — under a {e mixed} load: each of
   N client domains issues M requests on its own connection, mostly warm
   [run]s of a shared generated project but every k-th request a {e cold}
   [run] of a freshly written module (unique per request, so it can never
   hit any cache).  Every response's output is checked against its closed
   form; latency percentiles are reported per class (warm vs cold),
   because the whole point of concurrent dispatch is that the warm tail
   stays flat while cold work happens next to it.

   Gates (unconditional, exit 1 — like a checksum mismatch):
   - byte identity: every response, warm or cold, exactly matches
   - [warm_compiles = 0]: a final fresh-session [compile] of the shared
     project must compile nothing

   Hardware-conditional (like the PR-5 speedup gates, only on > 1 core):
   - head-of-line: with a [store.write=delay] fault plan making one
     session's cold compile deterministically slow, another session's
     warm requests on the pooled daemon must not inherit that delay.
   The workers=1 vs workers=N throughput ratio is recorded, never
   gated — CI boxes don't promise cores. *)

(* Nearest-rank percentile of an ascending-sorted array. *)
let percentile (sorted : float array) (p : float) : float =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

let sorted_of (l : float list) : float array =
  let a = Array.of_list l in
  Array.sort compare a;
  a

let percentile_fields (prefix : string) (sorted : float array) :
    (string * Json.t) list =
  [
    (prefix ^ "_p50_ms", Json.Num (percentile sorted 50.0));
    (prefix ^ "_p95_ms", Json.Num (percentile sorted 95.0));
    (prefix ^ "_p99_ms", Json.Num (percentile sorted 99.0));
  ]

(* One daemon, one load: [clients] connections x [per_client] requests,
   every [cold_every]-th one cold.  Returns the series JSON, its gate
   verdict, and the throughput (for the cross-series ratio). *)
let run_server_series ~(workers : int) ~(clients : int) ~(per_client : int)
    ~(cold_every : int) ~(n : int) () : Json.t * bool * float =
  let module Server = Liblang_server.Server in
  let module Client = Liblang_server.Client in
  let module P = Liblang_server.Protocol in
  let module Genproj = Core.Compiled.Genproj in
  incr cached_tmp_counter;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "liblang-bench-serve-%d-%d" (Unix.getpid ()) !cached_tmp_counter)
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error _ -> ());
  Fun.protect
    ~finally:(fun () ->
      Core.Compiled.reset_session ();
      rm_rf dir)
  @@ fun () ->
  let root, expected = Genproj.generate ~dir ~shape:Genproj.Diamond ~n ~depth:6 () in
  let expected = string_of_int expected in
  let socket = Filename.concat dir "server.sock" in
  let cfg =
    {
      Server.socket_path = socket;
      cache_dir = Filename.concat dir "cache";
      workers;
      default_jobs = 1;
      fuel = None;
      engine = Liblang_core.Pipeline.Interp;
      session_ttl = None;
      max_sessions = None;
    }
  in
  let server = Domain.spawn (fun () -> Server.serve cfg) in
  let failures = Atomic.make 0 in
  (* prime: one cold compile of the shared project, so its warm requests
     measure the steady state *)
  (match Client.connect ~retries:200 socket with
  | Ok c ->
      (match Client.request c (P.Compile { path = root; jobs = None }) with
      | Ok j when Client.ok_of j -> ()
      | _ -> Atomic.incr failures);
      Client.close c
  | Error _ -> Atomic.incr failures);
  let t0 = now () in
  let client_domains =
    List.init clients (fun ci ->
        Domain.spawn (fun () ->
            match Client.connect ~retries:200 socket with
            | Error _ ->
                Atomic.incr failures;
                ([], [])
            | Ok conn ->
                let warm = ref [] and cold = ref [] in
                for i = 0 to per_client - 1 do
                  let is_cold = cold_every > 0 && i mod cold_every = cold_every - 1 in
                  if is_cold then begin
                    (* a module nothing has ever seen: cold by construction *)
                    let k = (ci * per_client) + i in
                    let path =
                      Filename.concat dir (Printf.sprintf "cold_%d_%d.scm" ci i)
                    in
                    let oc = open_out_bin path in
                    output_string oc (Printf.sprintf "#lang racket\n(display %d)\n" k);
                    close_out oc;
                    let s = now () in
                    (match Client.request conn (P.Run { path; fuel = None }) with
                    | Ok j
                      when Client.ok_of j
                           && String.equal (Client.output_of j) (string_of_int k) ->
                        ()
                    | _ -> Atomic.incr failures);
                    cold := (1000.0 *. (now () -. s)) :: !cold
                  end
                  else begin
                    let s = now () in
                    (match Client.request conn (P.Run { path = root; fuel = None }) with
                    | Ok j
                      when Client.ok_of j && String.equal (Client.output_of j) expected
                      ->
                        ()
                    | _ -> Atomic.incr failures);
                    warm := (1000.0 *. (now () -. s)) :: !warm
                  end
                done;
                Client.close conn;
                (!warm, !cold)))
  in
  let parts = List.map Domain.join client_domains in
  let wall_ms = 1000.0 *. (now () -. t0) in
  (* the warm gate: a brand-new session must compile nothing *)
  let warm_compiles =
    match Client.connect ~retries:50 socket with
    | Error _ -> -1
    | Ok conn ->
        let r =
          match Client.request conn (P.Compile { path = root; jobs = None }) with
          | Ok j when Client.ok_of j -> Client.summary_count j "compiles"
          | _ -> -1
        in
        ignore (Client.request conn P.Shutdown);
        Client.close conn;
        r
  in
  Domain.join server;
  let warm_lats = sorted_of (List.concat_map fst parts)
  and cold_lats = sorted_of (List.concat_map snd parts) in
  let total = clients * per_client in
  let measured = Array.length warm_lats + Array.length cold_lats in
  let req_per_s = float_of_int total /. (wall_ms /. 1000.0) in
  let ok = Atomic.get failures = 0 && warm_compiles = 0 && measured = total in
  Printf.printf "%-8d %8.1f %9.2f %9.2f %9.2f %9.2f %8.1f %5d %5s\n%!" workers
    req_per_s
    (percentile warm_lats 50.0)
    (percentile warm_lats 95.0)
    (percentile cold_lats 50.0)
    (percentile cold_lats 95.0)
    wall_ms warm_compiles
    (if ok then "yes" else "NO");
  ( Json.Obj
      ([
         ("workers", Json.Num (float_of_int workers));
         ("clients", Json.Num (float_of_int clients));
         ("requests_per_client", Json.Num (float_of_int per_client));
         ("requests", Json.Num (float_of_int total));
         ("warm_requests", Json.Num (float_of_int (Array.length warm_lats)));
         ("cold_requests", Json.Num (float_of_int (Array.length cold_lats)));
         ("modules", Json.Num (float_of_int n));
         ("wall_ms", Json.Num wall_ms);
         ("req_per_s", Json.Num req_per_s);
       ]
      @ percentile_fields "warm" warm_lats
      @ percentile_fields "cold" cold_lats
      @ [
          ("outputs_identical", Json.Bool (Atomic.get failures = 0));
          ("warm_compiles", Json.Num (float_of_int warm_compiles));
          ("ok", Json.Bool ok);
        ]),
    ok,
    req_per_s )

(* The head-of-line probe: on a pooled daemon, make one session's cold
   compile deterministically slow (a [store.write=delay] fault plan — warm
   requests never write artifacts, so only the cold request inherits the
   delay) and measure another session's warm latencies while it runs.
   Sessions land on distinct workers (consecutive accepts shard round-
   robin), so the warm tail must stay far below the injected delay.  The
   latency gate only fires on > 1 core — on a 1-core box the domains
   timeshare and the warm requests legitimately stall. *)
let run_server_head_of_line ~(workers : int) ~(n : int) () : Json.t * bool =
  let module Server = Liblang_server.Server in
  let module Client = Liblang_server.Client in
  let module P = Liblang_server.Protocol in
  let module Genproj = Core.Compiled.Genproj in
  let delay_ms = 250.0 in
  let warm_runs = 5 in
  incr cached_tmp_counter;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "liblang-bench-serve-%d-%d" (Unix.getpid ()) !cached_tmp_counter)
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error _ -> ());
  Fun.protect
    ~finally:(fun () ->
      Core.Fault.install None;
      Core.Compiled.reset_session ();
      rm_rf dir)
  @@ fun () ->
  let root, expected = Genproj.generate ~dir ~shape:Genproj.Diamond ~n ~depth:6 () in
  let expected = string_of_int expected in
  let socket = Filename.concat dir "server.sock" in
  let cfg =
    {
      Server.socket_path = socket;
      cache_dir = Filename.concat dir "cache";
      workers;
      default_jobs = 1;
      fuel = None;
      engine = Liblang_core.Pipeline.Interp;
      session_ttl = None;
      max_sessions = None;
    }
  in
  let server = Domain.spawn (fun () -> Server.serve cfg) in
  let failures = ref 0 in
  let fail () = incr failures in
  (* two sessions on consecutive accepts -> distinct home workers *)
  let conn_warm =
    match Client.connect ~retries:200 socket with
    | Ok c -> Some c
    | Error _ ->
        fail ();
        None
  in
  let conn_cold =
    match Client.connect ~retries:50 socket with
    | Ok c -> Some c
    | Error _ ->
        fail ();
        None
  in
  (* warm the measuring session before arming the plan *)
  (match conn_warm with
  | Some c -> (
      match Client.request c (P.Run { path = root; fuel = None }) with
      | Ok j when Client.ok_of j && String.equal (Client.output_of j) expected -> ()
      | _ -> fail ())
  | None -> ());
  let cold_path = Filename.concat dir "cold_hol.scm" in
  let oc = open_out_bin cold_path in
  output_string oc "#lang racket\n(display 7)\n";
  close_out oc;
  (match Core.Fault.parse (Printf.sprintf "seed=1;store.write=delay@%.0f" delay_ms) with
  | Ok plan -> Core.Fault.install (Some plan)
  | Error _ -> fail ());
  (* launch the slow cold compile, then measure warm latencies next to it *)
  (match conn_cold with
  | Some c -> ( match Client.send c (P.Run { path = cold_path; fuel = None }) with
    | Ok _ -> ()
    | Error _ -> fail ())
  | None -> ());
  Unix.sleepf 0.03;
  let warm_lats = ref [] in
  (match conn_warm with
  | Some c ->
      for _ = 1 to warm_runs do
        let s = now () in
        (match Client.request c (P.Run { path = root; fuel = None }) with
        | Ok j when Client.ok_of j && String.equal (Client.output_of j) expected -> ()
        | _ -> fail ());
        warm_lats := (1000.0 *. (now () -. s)) :: !warm_lats
      done
  | None -> ());
  (match conn_cold with
  | Some c -> (
      match Client.recv c with
      | Ok j when Client.ok_of j && String.equal (Client.output_of j) "7" -> ()
      | _ -> fail ())
  | None -> ());
  Core.Fault.install None;
  (match Client.connect ~retries:50 socket with
  | Ok c ->
      ignore (Client.request c P.Shutdown);
      Client.close c
  | Error _ -> fail ());
  Option.iter Client.close conn_warm;
  Option.iter Client.close conn_cold;
  Domain.join server;
  let sorted = sorted_of !warm_lats in
  let warm_p95 = percentile sorted 95.0 in
  let cores = Domain.recommended_domain_count () in
  let gated = cores > 1 && workers > 1 in
  let isolated = warm_p95 < delay_ms /. 2.0 in
  let ok = !failures = 0 && ((not gated) || isolated) in
  Printf.printf
    "head-of-line: cold store.write delayed %.0fms, warm p95 %.2fms (%s%s)\n%!"
    delay_ms warm_p95
    (if isolated then "isolated" else "BLOCKED")
    (if gated then "" else "; not gated on this hardware");
  ( Json.Obj
      [
        ("delay_ms", Json.Num delay_ms);
        ("warm_runs", Json.Num (float_of_int warm_runs));
        ("warm_p95_ms", Json.Num warm_p95);
        ("isolated", Json.Bool isolated);
        ("gated", Json.Bool gated);
        ("outputs_identical", Json.Bool (!failures = 0));
        ("ok", Json.Bool ok);
      ],
    ok )

let run_server_figure ~(smoke : bool) () : Json.t =
  let cores = Domain.recommended_domain_count () in
  let pool_workers = max 2 (min 4 (cores - 1)) in
  let clients = if smoke then 2 else 4 in
  let per_client = if smoke then 6 else 24 in
  let cold_every = if smoke then 3 else 4 in
  let n = if smoke then 6 else 12 in
  Printf.printf
    "\n%s\nCompile server: %d clients x %d requests, every %dth cold (%d-module diamond)\n%s\n"
    line clients per_client cold_every n line;
  Printf.printf "%-8s %8s %9s %9s %9s %9s %8s %5s %5s\n" "workers" "req/s"
    "warm-p50" "warm-p95" "cold-p50" "cold-p95" "wall(ms)" "warm" "ok";
  let j1, ok1, rps1 =
    run_server_series ~workers:1 ~clients ~per_client ~cold_every ~n ()
  in
  let jn, okn, rpsn =
    run_server_series ~workers:pool_workers ~clients ~per_client ~cold_every ~n ()
  in
  let hol, ok_hol = run_server_head_of_line ~workers:pool_workers ~n:6 () in
  let ok = ok1 && okn && ok_hol in
  if not ok then checksum_mismatches := ("serve", Base) :: !checksum_mismatches;
  Json.Obj
    [
      ("cores", Json.Num (float_of_int cores));
      ("series", Json.Arr [ j1; jn ]);
      ("throughput_speedup", Json.Num (rpsn /. rps1));
      ("head_of_line", hol);
      ("ok", Json.Bool ok);
    ]

(* -- machine-readable output (BENCH_<figure>.json) ---------------------------- *)

(** The JSON shape of a figure run; schema documented in
    docs/observability.md ("The bench pipeline").  [median_ms] is the
    median of [runs] alternating rounds; [rewrites] is the optimizer's
    per-rule firing histogram for the variant's compilation, so a claimed
    speedup (e.g. EXPERIMENTS.md's sumfp 0.55x) is checkable against the
    rules that produced it. *)
let json_of_figure ?(expansion = []) ?parallel ?server ~figure ~rounds ~smoke
    (rows : row list) : Json.t =
  let json_of_result (v, (r : result)) =
    Json.Obj
      ([
         ("variant", Json.Str (variant_name v));
         ("median_ms", Json.Num r.mean_ms);
         ("checksum", Json.Str r.checksum);
         ("runs", Json.Num (float_of_int r.runs));
         ("expand_ms", Json.Num r.expand_ms);
         ("gc_minor_words", Json.Num r.gc_minor_words);
         ("gc_major_words", Json.Num r.gc_major_words);
         ("analysis_ms", Json.Num r.analysis_ms);
       ]
      @ (match r.vm with
        | None -> []
        | Some vm ->
            (* the bytecode-VM series for the same variant ([--engine vm]);
               vm_gc_minor_words feeds the allocation gate *)
            [
              ("vm_run_ms", Json.Num vm.vm_ms);
              ("vm_checksum", Json.Str vm.vm_checksum);
              ("vm_gc_minor_words", Json.Num vm.vm_gc_minor_words);
              ("vm_gc_major_words", Json.Num vm.vm_gc_major_words);
            ])
      @ (match r.cached with
        | None -> []
        | Some (cold, warm) ->
            (* the --cached series: same source compiled twice through the
               artifact store; warm is the §5 replay path *)
            [ ("compile_cold_ms", Json.Num cold); ("compile_warm_ms", Json.Num warm) ])
      @
      if not (is_typed v) then []
      else
        [
          ( "rewrites",
            Json.Obj (List.map (fun (rule, n) -> (rule, Json.Num (float_of_int n))) r.rewrites)
          );
          ( "rewrite_total",
            Json.Num (float_of_int (List.fold_left (fun acc (_, n) -> acc + n) 0 r.rewrites))
          );
          (* the flonum-specialization subset (fl:* and cpx:* rules) —
             EXPERIMENTS.md's shape claim is that these are nonzero exactly
             on the float benchmarks (sumfp, fibfp, mbrot, heapsort in
             fig6) *)
          ( "flonum_rewrites",
            Json.Num
              (float_of_int
                 (List.fold_left
                    (fun acc (rule, n) ->
                      let pre p =
                        String.length rule >= String.length p
                        && String.sub rule 0 (String.length p) = p
                      in
                      if pre "fl:" || pre "cpx:" then acc + n else acc)
                    0 r.rewrites)) );
          (* the 0CFA-fed subset — EXPERIMENTS.md's flow-analysis shape
             claim is that these are nonzero exactly on the typed variant
             (and zero on typed-nocfa, the ablation) *)
          ( "cfa_rewrites",
            Json.Num
              (float_of_int
                 (List.fold_left
                    (fun acc (rule, n) ->
                      if List.mem rule cfa_rules then acc + n else acc)
                    0 r.rewrites)) );
          (* the per-class histogram: rule firings grouped by the prefix
             before the rule's ":" (fl, cpx, opt, vec, ...), so a figure
             reader can see where a variant's rewrites came from without
             re-deriving the rule taxonomy *)
          ( "rewrite_classes",
            Json.Obj
              (let classes = Hashtbl.create 8 in
               let order = ref [] in
               List.iter
                 (fun (rule, n) ->
                   let cls =
                     match String.index_opt rule ':' with
                     | Some i -> String.sub rule 0 i
                     | None -> rule
                   in
                   match Hashtbl.find_opt classes cls with
                   | Some r -> r := !r + n
                   | None ->
                       Hashtbl.add classes cls (ref n);
                       order := cls :: !order)
                 r.rewrites;
               List.rev_map
                 (fun cls -> (cls, Json.Num (float_of_int !(Hashtbl.find classes cls))))
                 !order) );
        ])
  in
  let json_of_row (row : row) =
    Json.Obj
      [
        ("name", Json.Str row.program.Programs.name);
        ("suite", Json.Str row.program.Programs.suite);
        ("variants", Json.Arr (List.map json_of_result row.results));
      ]
  in
  Json.Obj
    ([
       (* 2 added per-variant gc_minor_words/gc_major_words and the
          optional top-level "parallel" section; 3 adds the optional
          top-level "server" section (--serve); 4 adds the per-variant
          bytecode-VM series (vm_run_ms / vm_checksum /
          vm_gc_minor_words / vm_gc_major_words); 5 adds the flow-analysis
          series — per-variant analysis_ms, the cfa_rewrites subset, the
          rewrite_classes histogram, and the typed-nocfa ablation rows;
          6 reshapes the server section for the concurrent daemon: a
          "series" array (one mixed cold/warm load per worker count, with
          per-class warm_/cold_ percentiles), the throughput_speedup
          ratio, and the head_of_line probe *)
       ("schema", Json.Num 6.0);
       ("figure", Json.Str figure);
       ("rounds", Json.Num (float_of_int rounds));
       ("smoke", Json.Bool smoke);
       ( "checksum_mismatches",
         Json.Arr
           (List.rev_map
              (fun (name, v) -> Json.Str (name ^ "/" ^ variant_name v))
              !checksum_mismatches) );
       ("benchmarks", Json.Arr (List.map json_of_row rows));
       ("expansion_stress", json_of_expand_rows expansion);
     ]
    @ (match parallel with None -> [] | Some p -> [ ("parallel", p) ])
    @ match server with None -> [] | Some s -> [ ("server", s) ])

(** Write a figure's rows to [path] (e.g. [BENCH_fig6.json]). *)
let write_figure_json ?expansion ?parallel ?server ~path ~figure ~rounds ~smoke
    (rows : row list) =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc
        (Json.to_string ~pretty:true
           (json_of_figure ?expansion ?parallel ?server ~figure ~rounds ~smoke rows));
      output_char oc '\n');
  Printf.printf "wrote %s\n%!" path

(* -- the chaos smoke (--chaos) ------------------------------------------------

   The closed-loop robustness gate, in-process: for each graph shape, a
   fault-free [-j 1] build establishes the reference artifact set, then a
   series of seeded fault plans (error / torn / delay modes — [crash]
   would exit this process; tools/chaos_check.sh covers crashes in
   subprocesses) is run through a [-j jobs] build into one shared,
   progressively damaged cache.  Every faulted build must {e return} —
   ok or with contained diagnostics, never an escaped exception, never a
   hang — and after a final fault-free recovery build the cache's
   [.lart] set must be byte-identical to the reference, the warm program
   must print the generator's closed form, and no [*.tmp.*] orphans may
   remain ([.bad] quarantine post-mortems are allowed by design —
   docs/robustness.md). *)

(* the [.lart]-only view of a cache dir: quarantined [.bad] files and
   (pre-sweep) temp files are not part of artifact-set parity *)
let lart_digests (dir : string) : (string * string) list =
  List.filter
    (fun (f, _) ->
      let n = String.length f in
      n > 5 && String.equal (String.sub f (n - 5) 5) ".lart")
    (dir_digests dir)

let chaos_plan ~seed ~round : string =
  match round mod 3 with
  | 0 ->
      Printf.sprintf
        "seed=%d;deadline=30;store.read=error~0.25;store.write=torn@64~0.3;build.task=error~0.25"
        seed
  | 1 ->
      Printf.sprintf
        "seed=%d;deadline=30;store.rename=error~0.3;store.lock=delay@5~0.2;loader.replay=error~0.3"
        seed
  | _ ->
      Printf.sprintf
        "seed=%d;deadline=30;build.spawn=error~0.25;store.write=torn@40~0.25;build.task=delay@10~0.2"
        seed

let run_chaos_smoke ~(jobs : int) () : unit =
  let module Build = Core.Compiled.Build in
  let module Genproj = Core.Compiled.Genproj in
  let module Fault = Core.Fault in
  let module Metrics = Core.Metrics in
  Printf.printf
    "\n%s\nChaos smoke (-j %d): seeded fault schedules over gen-modules graphs\n%s\n" line jobs
    line;
  Printf.printf "%-14s %8s %8s %8s %10s %10s %6s\n" "shape" "plans" "failed" "faults"
    "recovered" "identical" "ok";
  List.iter
    (fun shape ->
      let shape_name = Genproj.shape_to_string shape in
      let name = "chaos-" ^ shape_name in
      if matches_filter name then begin
        incr cached_tmp_counter;
        let dir =
          Filename.concat (Filename.get_temp_dir_name ())
            (Printf.sprintf "liblang-bench-chaos-%d-%d" (Unix.getpid ()) !cached_tmp_counter)
        in
        (try Unix.mkdir dir 0o755 with Unix.Unix_error _ -> ());
        Fun.protect
          ~finally:(fun () ->
            Core.Compiled.reset_session ();
            Fault.install None;
            rm_rf dir)
        @@ fun () ->
        let root, expected = Genproj.generate ~dir ~shape ~n:6 ~depth:4 () in
        let expected = string_of_int expected in
        let cache_ref = Filename.concat dir "cache-reference" in
        let cache_chaos = Filename.concat dir "cache-chaos" in
        let build ~jobs cache =
          Core.Compiled.reset_session ();
          Core.Compiled.with_cache_dir cache (fun () -> Build.build ~jobs [ root ])
        in
        (* fault-free serial reference *)
        let r_ref = build ~jobs:1 cache_ref in
        if not (Build.ok r_ref) then
          checksum_mismatches := (name ^ "-reference", Base) :: !checksum_mismatches;
        let reference = lart_digests cache_ref in
        (* seeded fault schedules into one shared, progressively damaged cache *)
        let escaped = ref 0 and failed_builds = ref 0 in
        let faults = Metrics.create () in
        let n_plans = 6 in
        for round = 0 to n_plans - 1 do
          let spec = chaos_plan ~seed:(101 * (round + 1)) ~round in
          match Fault.parse spec with
          | Error m -> failwith ("chaos smoke: bad built-in plan: " ^ m)
          | Ok plan -> (
              match
                Fault.with_plan plan (fun () ->
                    Metrics.with_collector faults (fun () -> build ~jobs cache_chaos))
              with
              | r -> if not (Build.ok r) then incr failed_builds
              | exception _ ->
                  (* contained diagnostics are fine; an escaped exception
                     is exactly what this gate exists to catch *)
                  incr escaped)
        done;
        if !escaped > 0 then checksum_mismatches := (name ^ "-escaped", Base) :: !checksum_mismatches;
        (* recovery: a fault-free build over the damaged cache must heal it *)
        let r_rec = build ~jobs cache_chaos in
        let recovered = Build.ok r_rec in
        let identical = lart_digests cache_chaos = reference in
        let is_tmp f =
          let sub = ".tmp." in
          let n = String.length f and m = String.length sub in
          let rec go i = i + m <= n && (String.equal (String.sub f i m) sub || go (i + 1)) in
          go 0
        in
        let no_orphans =
          Array.for_all
            (fun f -> not (is_tmp f))
            (match Sys.readdir cache_chaos with x -> x | exception Sys_error _ -> [||])
        in
        (* warm checksum through the healed store *)
        Core.Compiled.reset_session ();
        let checksum =
          match
            Core.Compiled.with_cache_dir cache_chaos (fun () ->
                let m = Core.Compiled.compile_file root in
                fst (Prims.with_captured_output (fun () -> Modsys.instantiate m)))
          with
          | s -> s
          | exception _ -> "<error>"
        in
        let ok =
          Build.ok r_ref && !escaped = 0 && recovered && identical && no_orphans
          && String.equal checksum expected
        in
        if not ok then checksum_mismatches := (name, Base) :: !checksum_mismatches;
        Printf.printf "%-14s %8d %8d %8d %10s %10s %6s\n" shape_name n_plans !failed_builds
          (Metrics.get faults "fault.injected")
          (if recovered then "yes" else "NO")
          (if identical then "yes" else "NO")
          (if ok then "yes" else "NO");
        flush stdout
      end)
    [ Genproj.Wide; Genproj.Diamond; Genproj.Chain ]
