(** Benchmark driver: regenerates the paper's figures 6–9, the §7.3 prose
    numbers, the optimizer ablations, and the boundary-contract overhead
    table.

    Usage:
    [dune exec bench/main.exe -- [fig6|fig7|fig8|fig9|prose|ablate|boundary|bechamel|expand|all] [--quick|--smoke] [--cached|--expand] [-j N] [--filter REGEX]]

    [--filter REGEX] restricts every family (figure rows, the expansion
    stress programs, the parallel-build projects) to benchmarks whose
    name matches the unanchored regex — CI smoke uses it to run a
    representative subset.  [-j N] sets the worker-domain count of the
    parallel-build series (default: the machine's recommended domain
    count, at least 2 so the pool machinery is always exercised).

    [fig6] (alone or within [all]) additionally writes [BENCH_fig6.json]
    — per-benchmark medians, variants, checksums, and optimizer rewrite
    counts (schema in docs/observability.md) — so the perf trajectory is
    machine-tracked.  [--smoke] is the CI mode: one round per variant,
    still emits the JSON, and the process exits 1 if any variant's
    checksum diverges from its siblings.

    [--cached] adds the separate-compilation series: each variant's
    source is additionally compiled twice through the artifact store
    (fresh temp cache dir, resolver session reset in between), and the
    figure JSON gains [compile_cold_ms] / [compile_warm_ms] per variant —
    the cold-vs-warm compile-time gap is the §5 replay dividend. *)

module Core = Liblang_core.Core
open Harness

let smoke = Array.exists (fun a -> a = "--smoke") Sys.argv
let chaos = Array.exists (fun a -> a = "--chaos" || a = "chaos") Sys.argv
let serve_mode = Array.exists (fun a -> a = "--serve") Sys.argv
let expand_mode = Array.exists (fun a -> a = "--expand" || a = "expand") Sys.argv
let quick = smoke || Array.exists (fun a -> a = "--quick") Sys.argv
let cached = Array.exists (fun a -> a = "--cached") Sys.argv
let rounds = if smoke then 1 else if quick then 3 else 9
let () = Harness.cached_series := cached

(* the value following [flag] on the command line, if any *)
let arg_value flag =
  let rec go i =
    if i >= Array.length Sys.argv - 1 then None
    else if Sys.argv.(i) = flag then Some Sys.argv.(i + 1)
    else go (i + 1)
  in
  go 1

(** Worker domains for the parallel-build series: [-j N], defaulting to
    the machine's recommended count but at least 2 (so the domain pool,
    locking and merge paths are exercised even on a 1-core box — the
    JSON records the core count so a speedup < 1 there is
    interpretable). *)
let jobs =
  match Option.bind (arg_value "-j") int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> max 2 (Domain.recommended_domain_count ())

let () = Option.iter Harness.set_filter (arg_value "--filter")

let fig6 () =
  (* the expansion series runs first: expansion-only timings are sensitive
     to how many bindings earlier compilations have piled into the global
     binding table, so the stress family is measured on a quiet table *)
  let expansion = run_expand_figure ~rounds:(if smoke then 1 else 3) () in
  let rows =
    run_figure ~rounds
      ~title:
        "Figure 6: Gabriel & Larceny benchmarks — naive backend stands in for the\n\
         other Scheme systems measured in the paper (see DESIGN.md)"
      ~figure:"fig6"
      ~variants:[ Naive_backend; Base; Typed ]
      ()
  in
  (* the vector-kernel pair rides along in BENCH_fig6.json with the
     flow-analysis ablation column: typed-nocfa compiles with the
     optimizer on but the 0CFA facts off, so the typed-vs-nocfa gap is
     what direct calls, closure unboxing and bound-check elision buy,
     and the checksum gate proves they bought it without changing
     observable behavior *)
  let vec_rows =
    run_figure ~rounds
      ~only:[ "spectralnorm"; "nbody" ]
      ~title:
        "Vector kernels (the 0CFA series): typed-nocfa = optimizer on, flow analysis off"
      ~figure:"fig7"
      ~variants:[ Base; Typed_no_cfa; Typed ]
      ()
  in
  let rows = rows @ vec_rows in
  (* the parallel-build series runs last: it resets the resolver session
     (clearing the user module registry), which must not race the rows
     above re-instantiating their declared modules *)
  let par = run_parallel_figure ~jobs ~smoke () in
  (* --serve: the compile-server series — N client domains x M warm run
     requests against an in-process daemon, with the compiles=0 warm gate
     (not subject to --filter; it measures the server, not a benchmark) *)
  let server = if serve_mode then Some (run_server_figure ~smoke ()) else None in
  (* the VM allocation gate: float kernels must run their inner loops on
     the unboxed register lanes (near-zero minor words), see
     Harness.vm_alloc_budgets *)
  check_vm_allocation rows;
  (* the expected-rewrite gate: the 0CFA-fed rules must fire on typed and
     stay silent on typed-nocfa, see Harness.expected_rewrites *)
  check_expected_rewrites rows;
  write_figure_json ~expansion
    ~parallel:(json_of_par_rows ~jobs par)
    ?server ~path:"BENCH_fig6.json" ~figure:"fig6" ~rounds ~smoke rows

let fig7 () =
  run_figure ~rounds ~title:"Figure 7: Computer Language Benchmarks Game" ~figure:"fig7"
    ~variants:[ Base; Typed ] ()

let fig8 () =
  run_figure ~rounds ~title:"Figure 8: pseudoknot (float-intensive)" ~figure:"fig8"
    ~variants:[ Naive_backend; Base; Typed ]
    ()

let fig9 () =
  run_figure ~rounds ~title:"Figure 9: large benchmarks" ~figure:"fig9" ~variants:[ Base; Typed ] ()

let prose () =
  Printf.printf "\n%s\n§7.3 prose checkpoints (speedup %% = (untyped - typed)/typed)\n%s\n" line
    line;
  let one name paper =
    let b = Programs.find name in
    let results = measure_variants ~rounds b [ Base; Typed ] in
    let base = List.assoc Base results and typed = List.assoc Typed results in
    let speedup = (base.mean_ms -. typed.mean_ms) /. typed.mean_ms *. 100.0 in
    Printf.printf "%-12s paper: +%3.0f%%   measured: %+5.0f%%  (untyped %.1fms, typed %.1fms)\n"
      name paper speedup base.mean_ms typed.mean_ms
  in
  one "fft" 33.0;
  one "pseudoknot" 123.0;
  flush stdout

let ablate () =
  Printf.printf
    "\n%s\nAblation: what the unsafe primitives buy (normalized to untyped = 1.00)\n\
     typed-O0 = typecheck only; typed-noubx = rewrites without backend unboxing;\n\
     typed-nocfa = optimizer on, 0CFA flow facts off\n%s\n"
    line line;
  Printf.printf "%-14s %12s %12s %12s %12s %12s\n" "benchmark" "untyped" "typed-O0"
    "typed-noubx" "typed-nocfa" "typed";
  List.iter
    (fun name ->
      let b = Programs.find name in
      let results =
        measure_variants ~rounds b [ Base; Typed_O0; Typed_no_unbox; Typed_no_cfa; Typed ]
      in
      let base = List.assoc Base results in
      let o0 = List.assoc Typed_O0 results in
      let noubx = List.assoc Typed_no_unbox results in
      let nocfa = List.assoc Typed_no_cfa results in
      let full = List.assoc Typed results in
      check_agreement name results;
      Printf.printf "%-14s %12.2f %12.2f %12.2f %12.2f %12.2f\n" name 1.0
        (o0.mean_ms /. base.mean_ms) (noubx.mean_ms /. base.mean_ms)
        (nocfa.mean_ms /. base.mean_ms) (full.mean_ms /. base.mean_ms);
      flush stdout)
    [ "sumfp"; "fibfp"; "mbrot"; "nbody"; "fft"; "pseudoknot" ]

(* Contract overhead at the typed/untyped boundary (§6): a typed module
   calling an untyped function through require/typed pays a contract per
   call; the same function inside the typed module does not. *)
let boundary () =
  Printf.printf "\n%s\nBoundary-contract overhead (§6): cost of require/typed per call\n%s\n" line
    line;
  let umod = "#lang racket\n(provide step)\n(define (step x) (+ x 1))\n" in
  ignore (Core.Modsys.declare ~name:"bench-untyped-step" umod);
  let crossing =
    "#lang typed/racket\n\
     (require/typed bench-untyped-step [step (Integer -> Integer)])\n\
     (define (main) : Integer\n\
    \  (let loop : Integer ([i : Integer 0] [acc : Integer 0])\n\
    \    (if (= i 100000) acc (loop (+ i 1) (step acc)))))\n\
     (display (main))\n"
  in
  let local =
    "#lang typed/racket\n\
     (define (step [x : Integer]) : Integer (+ x 1))\n\
     (define (main) : Integer\n\
    \  (let loop : Integer ([i : Integer 0] [acc : Integer 0])\n\
    \    (if (= i 100000) acc (loop (+ i 1) (step acc)))))\n\
     (display (main))\n"
  in
  let typed_to_typed_server =
    "#lang typed/racket\n(provide step)\n(define (step [x : Integer]) : Integer (+ x 1))\n"
  in
  ignore (Core.Modsys.declare ~name:"bench-typed-step" typed_to_typed_server);
  let typed_to_typed =
    "#lang typed/racket\n\
     (require bench-typed-step)\n\
     (define (main) : Integer\n\
    \  (let loop : Integer ([i : Integer 0] [acc : Integer 0])\n\
    \    (if (= i 100000) acc (loop (+ i 1) (step acc)))))\n\
     (display (main))\n"
  in
  let untyped_to_typed =
    "#lang racket\n\
     (require bench-typed-step)\n\
     (define (main)\n\
    \  (let loop ([i 0] [acc 0])\n\
    \    (if (= i 100000) acc (loop (+ i 1) (step acc)))))\n\
     (display (main))\n"
  in
  let time_mod name source =
    let m = Core.Modsys.declare ~name source in
    m.Core.Modsys.instantiated <- false;
    let _ = Core.Prims.with_captured_output (fun () -> Core.Modsys.instantiate m) in
    let runs = if quick then 3 else 10 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to runs do
      m.Core.Modsys.instantiated <- false;
      ignore (Core.Prims.with_captured_output (fun () -> Core.Modsys.instantiate m))
    done;
    1000.0 *. (Unix.gettimeofday () -. t0) /. float_of_int runs
  in
  let t_local = time_mod "bench-boundary-local" local in
  let t_tt = time_mod "bench-boundary-tt" typed_to_typed in
  let t_cross = time_mod "bench-boundary-cross" crossing in
  let t_ut = time_mod "bench-boundary-ut" untyped_to_typed in
  Printf.printf "typed calls its own function:             %8.1f ms  (1.00x)\n" t_local;
  Printf.printf "typed calls typed import (no contract):   %8.1f ms  (%.2fx)\n" t_tt
    (t_tt /. t_local);
  Printf.printf "typed calls untyped import (contracted):  %8.1f ms  (%.2fx)\n" t_cross
    (t_cross /. t_local);
  Printf.printf "untyped calls typed export (contracted):  %8.1f ms  (%.2fx)\n" t_ut
    (t_ut /. t_local);
  flush stdout

(* Bechamel micro-benchmark suite: one grouped test per figure. *)
let bechamel () =
  let open Bechamel in
  let open Toolkit in
  let test_of_bench (b : Programs.t) v =
    let m = declare_variant b v in
    Test.make
      ~name:(Printf.sprintf "%s/%s" b.Programs.name (variant_name v))
      (Staged.stage (fun () -> ignore (run_once m v)))
  in
  let group fig =
    Test.make_grouped ~name:fig
      (List.concat_map
         (fun b -> [ test_of_bench b Base; test_of_bench b Typed ])
         (Programs.by_figure fig))
  in
  let tests =
    Test.make_grouped ~name:"liblang" [ group "fig6"; group "fig7"; group "fig8"; group "fig9" ]
  in
  let instances = [ Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.3) () in
  let raw = Benchmark.all cfg instances tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  List.iter
    (fun instance ->
      let tbl = Analyze.all ols instance raw in
      Hashtbl.iter
        (fun name v ->
          match Analyze.OLS.estimates v with
          | Some [ est ] -> Printf.printf "%-44s %14.0f ns/run\n" name est
          | _ -> Printf.printf "%-44s (no estimate)\n" name)
        tbl)
    instances

(* CI gate: a checksum disagreement between variants of the same benchmark
   means a mis-optimization, not noise — fail the process. *)
let finish () =
  (match !Harness.alloc_gate_failures with
  | [] -> ()
  | fs ->
      Printf.eprintf "FAIL: %d float kernel%s over the vm allocation budget (see above)\n"
        (List.length fs)
        (if List.length fs = 1 then "" else "s"));
  (match !Harness.rewrite_gate_failures with
  | [] -> ()
  | fs ->
      Printf.eprintf
        "FAIL: %d expected-rewrite gate violation%s (0CFA rules inert or leaking, see above)\n"
        (List.length fs)
        (if List.length fs = 1 then "" else "s"));
  (match !Harness.checksum_mismatches with
  | [] -> ()
  | ms ->
      Printf.eprintf "FAIL: %d variant checksum mismatch%s (see table output above)\n"
        (List.length ms)
        (if List.length ms = 1 then "" else "es"));
  if
    !Harness.alloc_gate_failures <> []
    || !Harness.rewrite_gate_failures <> []
    || !Harness.checksum_mismatches <> []
  then exit 1

let () =
  Core.init ();
  let known =
    [ "fig6"; "fig7"; "fig8"; "fig9"; "prose"; "ablate"; "boundary"; "bechamel"; "all" ]
  in
  let arg =
    if chaos then "chaos"
    else if expand_mode then "expand"
    else
      match Array.find_opt (fun a -> List.mem a known) Sys.argv with
      | Some a -> a
      | None -> "all"
  in
  (match arg with
  (* --chaos: the robustness gate — seeded fault schedules over the
     gen-modules graphs; recovery, artifact parity and checksum are
     asserted via the same mismatch mechanism as every other gate *)
  | "chaos" -> run_chaos_smoke ~jobs ()
  (* --expand: the hygiene-at-speed series — fig6 with its per-variant
     [expand_ms] fields plus the expansion stress family, written to
     BENCH_fig6.json (the CI perf-smoke step runs this with --smoke) *)
  | "expand" -> fig6 ()
  | "fig6" -> fig6 ()
  | "fig7" -> ignore (fig7 ())
  | "fig8" -> ignore (fig8 ())
  | "fig9" -> ignore (fig9 ())
  | "prose" -> prose ()
  | "ablate" -> ablate ()
  | "boundary" -> boundary ()
  | "bechamel" -> bechamel ()
  | "all" | _ ->
      fig6 ();
      ignore (fig7 ());
      ignore (fig8 ());
      ignore (fig9 ());
      prose ();
      ablate ();
      boundary ();
      Printf.printf "\nDone. See EXPERIMENTS.md for the paper-vs-measured discussion.\n");
  finish ()
