(** Benchmark programs: each comes in an untyped ([#lang racket]) and a
    typed ([#lang typed/racket]) variant, as in the paper's evaluation
    (§7.3).  The typed variants differ only in annotations and extra
    predicates, exactly as the paper describes.

    Programs end by displaying a checksum, so the harness can verify that
    every backend and variant computes the same result.  Sizes are scaled
    for this interpreter (the paper ran native code; see DESIGN.md). *)

type t = {
  name : string;
  figure : string;  (** fig6 | fig7 | fig8 | fig9 *)
  suite : string;   (** provenance label printed in the tables *)
  untyped : string; (** module body without the #lang line *)
  typed : string;
}

let b name figure suite untyped typed = { name; figure; suite; untyped; typed }

(* ------------------------------------------------------------------ *)
(* Figure 6: Gabriel & Larceny micro-benchmarks                        *)
(* ------------------------------------------------------------------ *)

let tak =
  b "tak" "fig6" "Gabriel"
    {|
(define (tak x y z)
  (if (not (< y x)) z
      (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y))))
(define (main)
  (let loop ([i 0] [acc 0])
    (if (= i 12) acc (loop (+ i 1) (+ acc (tak 18 12 6))))))
(display (main))
|}
    {|
(define (tak [x : Integer] [y : Integer] [z : Integer]) : Integer
  (if (not (< y x)) z
      (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y))))
(define (main) : Integer
  (let loop : Integer ([i : Integer 0] [acc : Integer 0])
    (if (= i 12) acc (loop (+ i 1) (+ acc (tak 18 12 6))))))
(display (main))
|}

let cpstak =
  b "cpstak" "fig6" "Gabriel"
    {|
(define (cps-tak x y z k)
  (if (not (< y x)) (k z)
      (cps-tak (- x 1) y z
        (lambda (v1)
          (cps-tak (- y 1) z x
            (lambda (v2)
              (cps-tak (- z 1) x y
                (lambda (v3) (cps-tak v1 v2 v3 k)))))))))
(define (main)
  (let loop ([i 0] [acc 0])
    (if (= i 12) acc (loop (+ i 1) (+ acc (cps-tak 18 12 6 (lambda (a) a)))))))
(display (main))
|}
    {|
(define (cps-tak [x : Integer] [y : Integer] [z : Integer]
                 [k : (Integer -> Integer)]) : Integer
  (if (not (< y x)) (k z)
      (cps-tak (- x 1) y z
        (lambda ([v1 : Integer])
          (cps-tak (- y 1) z x
            (lambda ([v2 : Integer])
              (cps-tak (- z 1) x y
                (lambda ([v3 : Integer]) (cps-tak v1 v2 v3 k)))))))))
(define (main) : Integer
  (let loop : Integer ([i : Integer 0] [acc : Integer 0])
    (if (= i 12) acc
        (loop (+ i 1) (+ acc (cps-tak 18 12 6 (lambda ([a : Integer]) a)))))))
(display (main))
|}

let takl =
  b "takl" "fig6" "Gabriel"
    {|
(define (listn n) (if (= n 0) '() (cons n (listn (- n 1)))))
(define (shorterp x y)
  (and (pair? y) (or (null? x) (shorterp (cdr x) (cdr y)))))
(define (mas x y z)
  (if (not (shorterp y x)) z
      (mas (mas (cdr x) y z) (mas (cdr y) z x) (mas (cdr z) x y))))
(define (main)
  (let loop ([i 0] [acc 0])
    (if (= i 4) acc (loop (+ i 1) (+ acc (length (mas (listn 14) (listn 10) (listn 5))))))))
(display (main))
|}
    {|
(define (listn [n : Integer]) : (Listof Integer)
  (if (= n 0) '() (cons n (listn (- n 1)))))
(define (shorterp [x : (Listof Integer)] [y : (Listof Integer)]) : Boolean
  (and (pair? y) (or (null? x) (shorterp (cdr x) (cdr y)))))
(define (mas [x : (Listof Integer)] [y : (Listof Integer)] [z : (Listof Integer)])
  : (Listof Integer)
  (if (not (shorterp y x)) z
      (mas (mas (cdr x) y z) (mas (cdr y) z x) (mas (cdr z) x y))))
(define (main) : Integer
  (let loop : Integer ([i : Integer 0] [acc : Integer 0])
    (if (= i 4) acc (loop (+ i 1) (+ acc (length (mas (listn 14) (listn 10) (listn 5))))))))
(display (main))
|}

let divrec =
  b "divrec" "fig6" "Gabriel"
    {|
(define (create-n n)
  (let loop ([n n] [acc '()])
    (if (= n 0) acc (loop (- n 1) (cons '() acc)))))
(define (recursive-div2 l)
  (if (null? l) '() (cons (car l) (recursive-div2 (cddr l)))))
(define (main)
  (let ([l (create-n 200)])
    (let loop ([i 0] [acc 0])
      (if (= i 800) acc (loop (+ i 1) (+ acc (length (recursive-div2 l))))))))
(display (main))
|}
    {|
(define (create-n [n : Integer]) : (Listof Null)
  (let loop : (Listof Null) ([n : Integer n] [acc : (Listof Null) '()])
    (if (= n 0) acc (loop (- n 1) (cons '() acc)))))
(define (recursive-div2 [l : (Listof Null)]) : (Listof Null)
  (if (null? l) '() (cons (car l) (recursive-div2 (cddr l)))))
(define (main) : Integer
  (let ([l (create-n 200)])
    (let loop : Integer ([i : Integer 0] [acc : Integer 0])
      (if (= i 800) acc (loop (+ i 1) (+ acc (length (recursive-div2 l))))))))
(display (main))
|}

let nqueens =
  b "nqueens" "fig6" "Gabriel"
    {|
(define (iota n)
  (let loop ([i n] [acc '()])
    (if (= i 0) acc (loop (- i 1) (cons i acc)))))
(define (ok? row dist placed)
  (if (null? placed) #t
      (and (not (= (car placed) (+ row dist)))
           (not (= (car placed) (- row dist)))
           (ok? row (+ dist 1) (cdr placed)))))
(define (try x y z)
  (if (null? x)
      (if (null? y) 1 0)
      (+ (if (ok? (car x) 1 z)
             (try (append (cdr x) y) '() (cons (car x) z))
             0)
         (try (cdr x) (cons (car x) y) z))))
(define (main) (try (iota 8) '() '()))
(display (main))
|}
    {|
(define (iota [n : Integer]) : (Listof Integer)
  (let loop : (Listof Integer) ([i : Integer n] [acc : (Listof Integer) '()])
    (if (= i 0) acc (loop (- i 1) (cons i acc)))))
(define (ok? [row : Integer] [dist : Integer] [placed : (Listof Integer)]) : Boolean
  (if (null? placed) #t
      (and (not (= (car placed) (+ row dist)))
           (not (= (car placed) (- row dist)))
           (ok? row (+ dist 1) (cdr placed)))))
(define (try [x : (Listof Integer)] [y : (Listof Integer)] [z : (Listof Integer)]) : Integer
  (if (null? x)
      (if (null? y) 1 0)
      (+ (if (ok? (car x) 1 z)
             (try (append (cdr x) y) '() (cons (car x) z))
             0)
         (try (cdr x) (cons (car x) y) z))))
(define (main) : Integer (try (iota 8) '() '()))
(display (main))
|}

let sum =
  b "sum" "fig6" "Larceny"
    {|
(define (run n)
  (let loop ([i 0] [s 0])
    (if (< i n) (loop (+ i 1) (+ s i)) s)))
(define (main)
  (let loop ([k 0] [acc 0])
    (if (= k 60) acc (loop (+ k 1) (+ acc (run 10000))))))
(display (main))
|}
    {|
(define (run [n : Integer]) : Integer
  (let loop : Integer ([i : Integer 0] [s : Integer 0])
    (if (< i n) (loop (+ i 1) (+ s i)) s)))
(define (main) : Integer
  (let loop : Integer ([k : Integer 0] [acc : Integer 0])
    (if (= k 60) acc (loop (+ k 1) (+ acc (run 10000))))))
(display (main))
|}

let sumfp =
  b "sumfp" "fig6" "Larceny"
    {|
(define (run n)
  (let loop ([i 0.0] [s 0.0])
    (if (< i n) (loop (+ i 1.0) (+ s i)) s)))
(define (main)
  (let loop ([k 0] [acc 0.0])
    (if (= k 60) acc (loop (+ k 1) (+ acc (run 10000.0))))))
(display (main))
|}
    {|
(define (run [n : Float]) : Float
  (let loop : Float ([i : Float 0.0] [s : Float 0.0])
    (if (< i n) (loop (+ i 1.0) (+ s i)) s)))
(define (main) : Float
  (let loop : Float ([k : Integer 0] [acc : Float 0.0])
    (if (= k 60) acc (loop (+ k 1) (+ acc (run 10000.0))))))
(display (main))
|}

let fib =
  b "fib" "fig6" "Larceny"
    {|
(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
(define (main) (fib 24))
(display (main))
|}
    {|
(define (fib [n : Integer]) : Integer
  (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
(define (main) : Integer (fib 24))
(display (main))
|}

let fibfp =
  b "fibfp" "fig6" "Larceny"
    {|
(define (fibfp n) (if (< n 2.0) n (+ (fibfp (- n 1.0)) (fibfp (- n 2.0)))))
(define (main) (fibfp 22.0))
(display (main))
|}
    {|
(define (fibfp [n : Float]) : Float
  (if (< n 2.0) n (+ (fibfp (- n 1.0)) (fibfp (- n 2.0)))))
(define (main) : Float (fibfp 22.0))
(display (main))
|}

let ack =
  b "ack" "fig6" "Larceny"
    {|
(define (ack m n)
  (cond [(= m 0) (+ n 1)]
        [(= n 0) (ack (- m 1) 1)]
        [else (ack (- m 1) (ack m (- n 1)))]))
(define (main)
  (let loop ([i 0] [acc 0])
    (if (= i 6) acc (loop (+ i 1) (+ acc (ack 3 5))))))
(display (main))
|}
    {|
(define (ack [m : Integer] [n : Integer]) : Integer
  (cond [(= m 0) (+ n 1)]
        [(= n 0) (ack (- m 1) 1)]
        [else (ack (- m 1) (ack m (- n 1)))]))
(define (main) : Integer
  (let loop : Integer ([i : Integer 0] [acc : Integer 0])
    (if (= i 6) acc (loop (+ i 1) (+ acc (ack 3 5))))))
(display (main))
|}

let mbrot =
  b "mbrot" "fig6" "Larceny"
    {|
(define (iterations cr ci)
  (let loop ([zr 0.0] [zi 0.0] [c 0])
    (if (= c 64) c
        (let ([zr2 (* zr zr)] [zi2 (* zi zi)])
          (if (> (+ zr2 zi2) 4.0) c
              (loop (+ (- zr2 zi2) cr) (+ (* 2.0 (* zr zi)) ci) (+ c 1)))))))
(define (mbrot n)
  (let yloop ([y 0] [total 0])
    (if (= y n) total
        (yloop (+ y 1)
          (let xloop ([x 0] [t total])
            (if (= x n) t
                (xloop (+ x 1)
                  (+ t (iterations (+ -1.5 (/ (* 2.0 (exact->inexact x)) (exact->inexact n)))
                                   (+ -1.0 (/ (* 2.0 (exact->inexact y)) (exact->inexact n))))))))))))
(define (main) (mbrot 48))
(display (main))
|}
    {|
(define (iterations [cr : Float] [ci : Float]) : Integer
  (let loop : Integer ([zr : Float 0.0] [zi : Float 0.0] [c : Integer 0])
    (if (= c 64) c
        (let ([zr2 (* zr zr)] [zi2 (* zi zi)])
          (if (> (+ zr2 zi2) 4.0) c
              (loop (+ (- zr2 zi2) cr) (+ (* 2.0 (* zr zi)) ci) (+ c 1)))))))
(define (mbrot [n : Integer]) : Integer
  (let yloop : Integer ([y : Integer 0] [total : Integer 0])
    (if (= y n) total
        (yloop (+ y 1)
          (let xloop : Integer ([x : Integer 0] [t : Integer total])
            (if (= x n) t
                (xloop (+ x 1)
                  (+ t (iterations (+ -1.5 (/ (* 2.0 (exact->inexact x)) (exact->inexact n)))
                                   (+ -1.0 (/ (* 2.0 (exact->inexact y)) (exact->inexact n))))))))))))
(define (main) : Integer (mbrot 48))
(display (main))
|}

let heapsort =
  b "heapsort" "fig6" "Larceny"
    {|
(define (next-rand s) (modulo (+ (* s 1103515245) 12345) 2147483648))
(define (fill-random! v n)
  (let loop ([i 0] [s 42])
    (when (< i n)
      (vector-set! v i (/ (exact->inexact s) 2147483648.0))
      (loop (+ i 1) (next-rand s)))))
(define (sift-down! v start end)
  (let loop ([root start])
    (let ([child (+ (* 2 root) 1)])
      (when (<= child end)
        (let ([child (if (and (< child end)
                              (< (vector-ref v child) (vector-ref v (+ child 1))))
                         (+ child 1)
                         child)])
          (when (< (vector-ref v root) (vector-ref v child))
            (let ([tmp (vector-ref v root)])
              (vector-set! v root (vector-ref v child))
              (vector-set! v child tmp))
            (loop child)))))))
(define (heapsort! v n)
  (let heapify ([start (quotient (- n 2) 2)])
    (when (>= start 0)
      (sift-down! v start (- n 1))
      (heapify (- start 1))))
  (let drain ([end (- n 1)])
    (when (> end 0)
      (let ([tmp (vector-ref v 0)])
        (vector-set! v 0 (vector-ref v end))
        (vector-set! v end tmp))
      (sift-down! v 0 (- end 1))
      (drain (- end 1)))))
(define (main)
  (let ([v (make-vector 2000 0.0)])
    (let loop ([k 0] [acc 0.0])
      (if (= k 10) (floor (* 1000.0 acc))
          (begin
            (fill-random! v 2000)
            (heapsort! v 2000)
            (loop (+ k 1) (+ acc (vector-ref v 1000))))))))
(display (main))
|}
    {|
(define (next-rand [s : Integer]) : Integer (modulo (+ (* s 1103515245) 12345) 2147483648))
(define (fill-random! [v : (Vectorof Float)] [n : Integer]) : Void
  (let loop : Void ([i : Integer 0] [s : Integer 42])
    (when (< i n)
      (vector-set! v i (/ (exact->inexact s) 2147483648.0))
      (loop (+ i 1) (next-rand s)))))
(define (sift-down! [v : (Vectorof Float)] [start : Integer] [end : Integer]) : Void
  (let loop : Void ([root : Integer start])
    (let ([child (+ (* 2 root) 1)])
      (when (<= child end)
        (let ([child (if (and (< child end)
                              (< (vector-ref v child) (vector-ref v (+ child 1))))
                         (+ child 1)
                         child)])
          (when (< (vector-ref v root) (vector-ref v child))
            (let ([tmp (vector-ref v root)])
              (vector-set! v root (vector-ref v child))
              (vector-set! v child tmp))
            (loop child)))))))
(define (heapsort! [v : (Vectorof Float)] [n : Integer]) : Void
  (let heapify : Void ([start : Integer (quotient (- n 2) 2)])
    (when (>= start 0)
      (sift-down! v start (- n 1))
      (heapify (- start 1))))
  (let drain : Void ([end : Integer (- n 1)])
    (when (> end 0)
      (let ([tmp (vector-ref v 0)])
        (vector-set! v 0 (vector-ref v end))
        (vector-set! v end tmp))
      (sift-down! v 0 (- end 1))
      (drain (- end 1)))))
(define (main) : Float
  (let ([v (make-vector 2000 0.0)])
    (let loop : Float ([k : Integer 0] [acc : Float 0.0])
      (if (= k 10) (floor (* 1000.0 acc))
          (begin
            (fill-random! v 2000)
            (heapsort! v 2000)
            (loop (+ k 1) (+ acc (vector-ref v 1000))))))))
(display (main))
|}

let array1 =
  b "array1" "fig6" "Larceny"
    {|
(define (create-x n)
  (let ([result (make-vector n 0)])
    (let loop ([i 0])
      (when (< i n)
        (vector-set! result i i)
        (loop (+ i 1))))
    result))
(define (create-y x)
  (let* ([n (vector-length x)]
         [result (make-vector n 0)])
    (let loop ([i (- n 1)])
      (when (>= i 0)
        (vector-set! result i (vector-ref x i))
        (loop (- i 1))))
    result))
(define (my-try n)
  (vector-length (create-y (create-x n))))
(define (main)
  (let loop ([i 0] [acc 0])
    (if (= i 80) acc (loop (+ i 1) (+ acc (my-try 2000))))))
(display (main))
|}
    {|
(define (create-x [n : Integer]) : (Vectorof Integer)
  (let ([result (make-vector n 0)])
    (let loop : Void ([i : Integer 0])
      (when (< i n)
        (vector-set! result i i)
        (loop (+ i 1))))
    result))
(define (create-y [x : (Vectorof Integer)]) : (Vectorof Integer)
  (let* ([n (vector-length x)]
         [result (make-vector n 0)])
    (let loop : Void ([i : Integer (- n 1)])
      (when (>= i 0)
        (vector-set! result i (vector-ref x i))
        (loop (- i 1))))
    result))
(define (my-try [n : Integer]) : Integer
  (vector-length (create-y (create-x n))))
(define (main) : Integer
  (let loop : Integer ([i : Integer 0] [acc : Integer 0])
    (if (= i 80) acc (loop (+ i 1) (+ acc (my-try 2000))))))
(display (main))
|}

let deriv =
  b "deriv" "fig6" "Gabriel"
    {|
(define (deriv-aux a) (list '/ (deriv a) a))
(define (deriv a)
  (cond
    [(not (pair? a)) (if (eq? a 'x) 1 0)]
    [(eq? (car a) '+) (cons '+ (map deriv (cdr a)))]
    [(eq? (car a) '-) (cons '- (map deriv (cdr a)))]
    [(eq? (car a) '*) (list '* a (cons '+ (map deriv-aux (cdr a))))]
    [(eq? (car a) '/) (list '- (list '/ (deriv (cadr a)) (caddr a))
                            (list '/ (cadr a) (list '* (caddr a) (caddr a) (deriv (caddr a)))))]
    [else 'error]))
(define (count-tree t) (if (pair? t) (+ (count-tree (car t)) (count-tree (cdr t))) 1))
(define (main)
  (let loop ([i 0] [acc 0])
    (if (= i 600) acc
        (loop (+ i 1)
              (+ acc (count-tree (deriv '(+ (* 3 x x) (* a x x) (* b x) 5))))))))
(display (main))
|}
    {|
(define (deriv-aux [a : Any]) : Any (list '/ (deriv a) a))
(define (deriv [a : Any]) : Any
  (cond
    [(not (pair? a)) (if (eq? a 'x) 1 0)]
    [(eq? (car a) '+) (cons '+ (map deriv (cdr a)))]
    [(eq? (car a) '-) (cons '- (map deriv (cdr a)))]
    [(eq? (car a) '*) (list '* a (cons '+ (map deriv-aux (cdr a))))]
    [(eq? (car a) '/) (list '- (list '/ (deriv (cadr a)) (caddr a))
                            (list '/ (cadr a) (list '* (caddr a) (caddr a) (deriv (caddr a)))))]
    [else 'error]))
(define (count-tree [t : Any]) : Integer
  (if (pair? t) (+ (count-tree (car t)) (count-tree (cdr t))) 1))
(define (main) : Integer
  (let loop : Integer ([i : Integer 0] [acc : Integer 0])
    (if (= i 600) acc
        (loop (+ i 1)
              (+ acc (count-tree (deriv '(+ (* 3 x x) (* a x x) (* b x) 5))))))))
(display (main))
|}

(* ------------------------------------------------------------------ *)
(* Figure 7: Computer Language Benchmarks Game                         *)
(* ------------------------------------------------------------------ *)

let nbody =
  b "nbody" "fig7" "CLBG"
    {|
(define (body x y z vx vy vz m)
  (let ([v (make-vector 7 0.0)])
    (vector-set! v 0 x) (vector-set! v 1 y) (vector-set! v 2 z)
    (vector-set! v 3 vx) (vector-set! v 4 vy) (vector-set! v 5 vz)
    (vector-set! v 6 m)
    v))
(define solar-mass 39.47841760435743)
(define days-per-year 365.24)
(define (bodies)
  (vector
   (body 0.0 0.0 0.0 0.0 0.0 0.0 solar-mass)
   (body 4.84143144246472090 -1.16032004402742839 -0.103622044471123109
         (* 0.00166007664274403694 days-per-year) (* 0.00769901118419740425 days-per-year)
         (* -0.0000690460016972063023 days-per-year) (* 0.000954791938424326609 solar-mass))
   (body 8.34336671824457987 4.12479856412430479 -0.403523417114321381
         (* -0.00276742510726862411 days-per-year) (* 0.00499852801234917238 days-per-year)
         (* 0.0000230417297573763929 days-per-year) (* 0.000285885980666130812 solar-mass))
   (body 12.8943695621391310 -15.1111514016986312 -0.223307578892655734
         (* 0.00296460137564761618 days-per-year) (* 0.00237847173959480950 days-per-year)
         (* -0.0000296589568540237556 days-per-year) (* 0.0000436624404335156298 solar-mass))
   (body 15.3796971148509165 -25.9193146099879641 0.179258772950371181
         (* 0.00268067772490389322 days-per-year) (* 0.00162824170038242295 days-per-year)
         (* -0.0000951592254519715870 days-per-year) (* 0.0000515138902046611451 solar-mass))))
(define (advance! bs dt)
  (let ([n (vector-length bs)])
    (let iloop ([i 0])
      (when (< i n)
        (let ([bi (vector-ref bs i)])
          (let jloop ([j (+ i 1)])
            (when (< j n)
              (let ([bj (vector-ref bs j)])
                (let* ([dx (- (vector-ref bi 0) (vector-ref bj 0))]
                       [dy (- (vector-ref bi 1) (vector-ref bj 1))]
                       [dz (- (vector-ref bi 2) (vector-ref bj 2))]
                       [d2 (+ (* dx dx) (+ (* dy dy) (* dz dz)))]
                       [mag (/ dt (* d2 (sqrt d2)))]
                       [mi (* (vector-ref bi 6) mag)]
                       [mj (* (vector-ref bj 6) mag)])
                  (vector-set! bi 3 (- (vector-ref bi 3) (* dx mj)))
                  (vector-set! bi 4 (- (vector-ref bi 4) (* dy mj)))
                  (vector-set! bi 5 (- (vector-ref bi 5) (* dz mj)))
                  (vector-set! bj 3 (+ (vector-ref bj 3) (* dx mi)))
                  (vector-set! bj 4 (+ (vector-ref bj 4) (* dy mi)))
                  (vector-set! bj 5 (+ (vector-ref bj 5) (* dz mi)))))
              (jloop (+ j 1)))))
        (iloop (+ i 1))))
    (let mloop ([i 0])
      (when (< i n)
        (let ([bi (vector-ref bs i)])
          (vector-set! bi 0 (+ (vector-ref bi 0) (* dt (vector-ref bi 3))))
          (vector-set! bi 1 (+ (vector-ref bi 1) (* dt (vector-ref bi 4))))
          (vector-set! bi 2 (+ (vector-ref bi 2) (* dt (vector-ref bi 5)))))
        (mloop (+ i 1))))))
(define (energy bs)
  (let ([n (vector-length bs)])
    (let iloop ([i 0] [e 0.0])
      (if (= i n) e
          (let ([bi (vector-ref bs i)])
            (let ([e (+ e (* 0.5 (* (vector-ref bi 6)
                                    (+ (* (vector-ref bi 3) (vector-ref bi 3))
                                       (+ (* (vector-ref bi 4) (vector-ref bi 4))
                                          (* (vector-ref bi 5) (vector-ref bi 5)))))))])
              (let jloop ([j (+ i 1)] [e e])
                (if (= j n) (iloop (+ i 1) e)
                    (let ([bj (vector-ref bs j)])
                      (let* ([dx (- (vector-ref bi 0) (vector-ref bj 0))]
                             [dy (- (vector-ref bi 1) (vector-ref bj 1))]
                             [dz (- (vector-ref bi 2) (vector-ref bj 2))]
                             [d (sqrt (+ (* dx dx) (+ (* dy dy) (* dz dz))))])
                        (jloop (+ j 1)
                               (- e (/ (* (vector-ref bi 6) (vector-ref bj 6)) d)))))))))))))
(define (main)
  (let ([bs (bodies)])
    (let loop ([i 0])
      (when (< i 6000)
        (advance! bs 0.01)
        (loop (+ i 1))))
    (floor (* 1000000.0 (energy bs)))))
(display (main))
|}
    {|
(define (body [x : Float] [y : Float] [z : Float]
              [vx : Float] [vy : Float] [vz : Float] [m : Float]) : (Vectorof Float)
  (let ([v (make-vector 7 0.0)])
    (vector-set! v 0 x) (vector-set! v 1 y) (vector-set! v 2 z)
    (vector-set! v 3 vx) (vector-set! v 4 vy) (vector-set! v 5 vz)
    (vector-set! v 6 m)
    v))
(define solar-mass : Float 39.47841760435743)
(define days-per-year : Float 365.24)
(define (bodies) : (Vectorof (Vectorof Float))
  (vector
   (body 0.0 0.0 0.0 0.0 0.0 0.0 solar-mass)
   (body 4.84143144246472090 -1.16032004402742839 -0.103622044471123109
         (* 0.00166007664274403694 days-per-year) (* 0.00769901118419740425 days-per-year)
         (* -0.0000690460016972063023 days-per-year) (* 0.000954791938424326609 solar-mass))
   (body 8.34336671824457987 4.12479856412430479 -0.403523417114321381
         (* -0.00276742510726862411 days-per-year) (* 0.00499852801234917238 days-per-year)
         (* 0.0000230417297573763929 days-per-year) (* 0.000285885980666130812 solar-mass))
   (body 12.8943695621391310 -15.1111514016986312 -0.223307578892655734
         (* 0.00296460137564761618 days-per-year) (* 0.00237847173959480950 days-per-year)
         (* -0.0000296589568540237556 days-per-year) (* 0.0000436624404335156298 solar-mass))
   (body 15.3796971148509165 -25.9193146099879641 0.179258772950371181
         (* 0.00268067772490389322 days-per-year) (* 0.00162824170038242295 days-per-year)
         (* -0.0000951592254519715870 days-per-year) (* 0.0000515138902046611451 solar-mass))))
(define (advance! [bs : (Vectorof (Vectorof Float))] [dt : Float]) : Void
  (let ([n (vector-length bs)])
    (let iloop : Void ([i : Integer 0])
      (when (< i n)
        (let ([bi (vector-ref bs i)])
          (let jloop : Void ([j : Integer (+ i 1)])
            (when (< j n)
              (let ([bj (vector-ref bs j)])
                (let* ([dx (- (vector-ref bi 0) (vector-ref bj 0))]
                       [dy (- (vector-ref bi 1) (vector-ref bj 1))]
                       [dz (- (vector-ref bi 2) (vector-ref bj 2))]
                       [d2 (+ (* dx dx) (+ (* dy dy) (* dz dz)))]
                       [mag (/ dt (* d2 (sqrt d2)))]
                       [mi (* (vector-ref bi 6) mag)]
                       [mj (* (vector-ref bj 6) mag)])
                  (vector-set! bi 3 (- (vector-ref bi 3) (* dx mj)))
                  (vector-set! bi 4 (- (vector-ref bi 4) (* dy mj)))
                  (vector-set! bi 5 (- (vector-ref bi 5) (* dz mj)))
                  (vector-set! bj 3 (+ (vector-ref bj 3) (* dx mi)))
                  (vector-set! bj 4 (+ (vector-ref bj 4) (* dy mi)))
                  (vector-set! bj 5 (+ (vector-ref bj 5) (* dz mi)))))
              (jloop (+ j 1)))))
        (iloop (+ i 1))))
    (let mloop : Void ([i : Integer 0])
      (when (< i n)
        (let ([bi (vector-ref bs i)])
          (vector-set! bi 0 (+ (vector-ref bi 0) (* dt (vector-ref bi 3))))
          (vector-set! bi 1 (+ (vector-ref bi 1) (* dt (vector-ref bi 4))))
          (vector-set! bi 2 (+ (vector-ref bi 2) (* dt (vector-ref bi 5)))))
        (mloop (+ i 1))))))
(define (energy [bs : (Vectorof (Vectorof Float))]) : Float
  (let ([n (vector-length bs)])
    (let iloop : Float ([i : Integer 0] [e : Float 0.0])
      (if (= i n) e
          (let ([bi (vector-ref bs i)])
            (let ([e (+ e (* 0.5 (* (vector-ref bi 6)
                                    (+ (* (vector-ref bi 3) (vector-ref bi 3))
                                       (+ (* (vector-ref bi 4) (vector-ref bi 4))
                                          (* (vector-ref bi 5) (vector-ref bi 5)))))))])
              (let jloop : Float ([j : Integer (+ i 1)] [e : Float e])
                (if (= j n) (iloop (+ i 1) e)
                    (let ([bj (vector-ref bs j)])
                      (let* ([dx (- (vector-ref bi 0) (vector-ref bj 0))]
                             [dy (- (vector-ref bi 1) (vector-ref bj 1))]
                             [dz (- (vector-ref bi 2) (vector-ref bj 2))]
                             [d (sqrt (+ (* dx dx) (+ (* dy dy) (* dz dz))))])
                        (jloop (+ j 1)
                               (- e (/ (* (vector-ref bi 6) (vector-ref bj 6)) d)))))))))))))
(define (main) : Float
  (let ([bs (bodies)])
    (let loop : Void ([i : Integer 0])
      (when (< i 6000)
        (advance! bs 0.01)
        (loop (+ i 1))))
    (floor (* 1000000.0 (energy bs)))))
(display (main))
|}

let spectralnorm =
  b "spectralnorm" "fig7" "CLBG"
    {|
(define (A i j)
  (/ 1.0 (+ (* (exact->inexact (+ i j)) (/ (exact->inexact (+ i (+ j 1))) 2.0))
            (exact->inexact (+ i 1)))))
(define (mulAv n v out transpose?)
  (let ([Aij (lambda (ai aj) (if transpose? (A aj ai) (A ai aj)))])
    (let iloop ([i 0])
      (when (< i n)
        (vector-set! out i 0.0)
        (let jloop ([j 0])
          (when (< j n)
            (vector-set! out i (+ (vector-ref out i)
                                  (* (Aij i j) (vector-ref v j))))
            (jloop (+ j 1))))
        (iloop (+ i 1))))))
(define (main)
  (let* ([n 40]
         [u (make-vector n 1.0)]
         [v (make-vector n 0.0)]
         [w (make-vector n 0.0)])
    (let loop ([k 0])
      (when (< k 10)
        (mulAv n u w #f) (mulAv n w v #t)
        (mulAv n v w #f) (mulAv n w u #t)
        (loop (+ k 1))))
    (let loop ([i 0] [vbv 0.0] [vv 0.0])
      (if (= i n)
          (floor (* 1000000000.0 (sqrt (/ vbv vv))))
          (loop (+ i 1)
                (+ vbv (* (vector-ref u i) (vector-ref v i)))
                (+ vv (* (vector-ref v i) (vector-ref v i))))))))
(display (main))
|}
    {|
(define (A [i : Integer] [j : Integer]) : Float
  (/ 1.0 (+ (* (exact->inexact (+ i j)) (/ (exact->inexact (+ i (+ j 1))) 2.0))
            (exact->inexact (+ i 1)))))
(define (mulAv [n : Integer] [v : (Vectorof Float)] [out : (Vectorof Float)]
               [transpose? : Boolean]) : Void
  (let ([Aij (lambda ([ai : Integer] [aj : Integer]) (if transpose? (A aj ai) (A ai aj)))])
    (let iloop : Void ([i : Integer 0])
      (when (< i n)
        (vector-set! out i 0.0)
        (let jloop : Void ([j : Integer 0])
          (when (< j n)
            (vector-set! out i (+ (vector-ref out i)
                                  (* (Aij i j) (vector-ref v j))))
            (jloop (+ j 1))))
        (iloop (+ i 1))))))
(define (main) : Float
  (let* ([n 40]
         [u (make-vector n 1.0)]
         [v (make-vector n 0.0)]
         [w (make-vector n 0.0)])
    (let loop : Void ([k : Integer 0])
      (when (< k 10)
        (mulAv n u w #f) (mulAv n w v #t)
        (mulAv n v w #f) (mulAv n w u #t)
        (loop (+ k 1))))
    (let loop : Float ([i : Integer 0] [vbv : Float 0.0] [vv : Float 0.0])
      (if (= i n)
          (floor (* 1000000000.0 (sqrt (/ vbv vv))))
          (loop (+ i 1)
                (+ vbv (* (vector-ref u i) (vector-ref v i)))
                (+ vv (* (vector-ref v i) (vector-ref v i))))))))
(display (main))
|}

let mandelbrot =
  b "mandelbrot" "fig7" "CLBG"
    {|
(define (escapes? c)
  (let loop ([z 0.0+0.0i] [n 0])
    (cond [(= n 50) 1]
          [(> (magnitude z) 2.0) 0]
          [else (loop (+ (* z z) c) (+ n 1))])))
(define (main)
  (let yloop ([y 0] [total 0])
    (if (= y 24) total
        (yloop (+ y 1)
          (let xloop ([x 0] [t total])
            (if (= x 24) t
                (xloop (+ x 1)
                  (+ t (escapes? (make-rectangular
                                  (+ -1.5 (/ (* 2.0 (exact->inexact x)) 24.0))
                                  (+ -1.0 (/ (* 2.0 (exact->inexact y)) 24.0))))))))))))
(display (main))
|}
    {|
(define (escapes? [c : Float-Complex]) : Integer
  (let loop : Integer ([z : Float-Complex 0.0+0.0i] [n : Integer 0])
    (cond [(= n 50) 1]
          [(> (magnitude z) 2.0) 0]
          [else (loop (+ (* z z) c) (+ n 1))])))
(define (main) : Integer
  (let yloop : Integer ([y : Integer 0] [total : Integer 0])
    (if (= y 24) total
        (yloop (+ y 1)
          (let xloop : Integer ([x : Integer 0] [t : Integer total])
            (if (= x 24) t
                (xloop (+ x 1)
                  (+ t (escapes? (make-rectangular
                                  (+ -1.5 (/ (* 2.0 (exact->inexact x)) 24.0))
                                  (+ -1.0 (/ (* 2.0 (exact->inexact y)) 24.0))))))))))))
(display (main))
|}

let binarytrees =
  b "binarytrees" "fig7" "CLBG"
    {|
(define (make-node item depth)
  (if (= depth 0)
      (cons item '())
      (cons item (cons (make-node (- (* 2 item) 1) (- depth 1))
                       (make-node (* 2 item) (- depth 1))))))
(define (check node)
  (if (null? (cdr node))
      (car node)
      (+ (car node)
         (- (check (car (cdr node))) (check (cdr (cdr node)))))))
(define (main)
  (let loop ([d 4] [acc 0])
    (if (> d 12) acc
        (loop (+ d 2)
              (+ acc (let iter ([i 0] [t 0])
                       (if (= i 12) t
                           (iter (+ i 1) (+ t (check (make-node i d)))))))))))
(display (main))
|}
    {|
(define (make-node [item : Integer] [depth : Integer]) : Any
  (if (= depth 0)
      (cons item '())
      (cons item (cons (make-node (- (* 2 item) 1) (- depth 1))
                       (make-node (* 2 item) (- depth 1))))))
(define (check [node : Any]) : Integer
  (if (null? (cdr node))
      (car node)
      (+ (car node)
         (- (check (car (cdr node))) (check (cdr (cdr node)))))))
(define (main) : Integer
  (let loop : Integer ([d : Integer 4] [acc : Integer 0])
    (if (> d 12) acc
        (loop (+ d 2)
              (+ acc (let iter : Integer ([i : Integer 0] [t : Integer 0])
                       (if (= i 12) t
                           (iter (+ i 1) (+ t (check (make-node i d)))))))))))
(display (main))
|}

let fannkuch =
  b "fannkuch" "fig7" "CLBG"
    {|
(define (flips p)
  (let loop ([p p] [n 0])
    (let ([f (car p)])
      (if (= f 1) n
          (loop (let rev ([k f] [front '()] [rest p])
                  (if (= k 0) (append front rest)
                      (rev (- k 1) (cons (car rest) front) (cdr rest))))
                (+ n 1))))))
(define (insertions x l)
  (if (null? l)
      (list (list x))
      (cons (cons x l)
            (map (lambda (r) (cons (car l) r)) (insertions x (cdr l))))))
(define (permutations l)
  (if (null? l) (list '())
      (foldr (lambda (p acc) (append (insertions (car l) p) acc))
             '() (permutations (cdr l)))))
(define (main)
  (foldl (lambda (p best) (max best (flips p))) 0 (permutations (list 1 2 3 4 5 6 7))))
(display (main))
|}
    {|
(define (flips [p : (Listof Integer)]) : Integer
  (let loop : Integer ([p : (Listof Integer) p] [n : Integer 0])
    (let ([f (car p)])
      (if (= f 1) n
          (loop (let rev : (Listof Integer)
                  ([k : Integer f] [front : (Listof Integer) '()] [rest : (Listof Integer) p])
                  (if (= k 0) (append front rest)
                      (rev (- k 1) (cons (car rest) front) (cdr rest))))
                (+ n 1))))))
(define (insertions [x : Integer] [l : (Listof Integer)]) : (Listof (Listof Integer))
  (if (null? l)
      (list (list x))
      (cons (cons x l)
            (map (lambda ([r : (Listof Integer)]) (cons (car l) r)) (insertions x (cdr l))))))
(define (permutations [l : (Listof Integer)]) : (Listof (Listof Integer))
  (if (null? l) (list '())
      (foldr (lambda ([p : (Listof Integer)] [acc : (Listof (Listof Integer))])
               (append (insertions (car l) p) acc))
             '() (permutations (cdr l)))))
(define (main) : Integer
  (foldl (lambda ([p : (Listof Integer)] [best : Integer]) (max best (flips p)))
         0 (permutations (list 1 2 3 4 5 6 7))))
(display (main))
|}

(* ------------------------------------------------------------------ *)
(* Figure 8: pseudoknot (float-intensive kernel; see DESIGN.md)        *)
(* ------------------------------------------------------------------ *)

let pseudoknot =
  b "pseudoknot" "fig8" "Hartel et al."
    {|
(define (next-seed s)
  (let ([x (* s 16807.0)])
    (- x (* 2147483647.0 (floor (/ x 2147483647.0))))))
(define (frand s) (/ s 2147483647.0))
(define (rms-after-transform seed atoms)
  (let ([theta (* 6.283185307179586 (frand seed))]
        [phi (* 3.141592653589793 (frand (next-seed seed)))])
    (let ([ct (cos theta)] [st (sin theta)] [cp (cos phi)] [sp (sin phi)])
      (let loop ([i 0] [acc 0.0] [x 1.0] [y 0.5] [z -0.3])
        (if (= i atoms) (sqrt (/ acc (exact->inexact atoms)))
            (let ([nx (+ (- (* ct x) (* st y)) (* 0.1 cp))]
                  [ny (+ (+ (* st x) (* ct y)) (* 0.1 sp))]
                  [nz (+ (* cp z) (* 0.05 (- (* sp x) (* sp y))))])
              (loop (+ i 1)
                    (+ acc (+ (* (- nx x) (- nx x))
                              (+ (* (- ny y) (- ny y)) (* (- nz z) (- nz z)))))
                    nx ny nz)))))))
(define (search n atoms)
  (let loop ([i 0] [seed 42.0] [best 1e30])
    (if (= i n) best
        (let ([r (rms-after-transform seed atoms)])
          (loop (+ i 1) (next-seed seed) (min best r))))))
(define (main) (floor (* 1000000.0 (search 2000 60))))
(display (main))
|}
    {|
(define (next-seed [s : Float]) : Float
  (let ([x (* s 16807.0)])
    (- x (* 2147483647.0 (floor (/ x 2147483647.0))))))
(define (frand [s : Float]) : Float (/ s 2147483647.0))
(define (rms-after-transform [seed : Float] [atoms : Integer]) : Float
  (let ([theta (* 6.283185307179586 (frand seed))]
        [phi (* 3.141592653589793 (frand (next-seed seed)))])
    (let ([ct (cos theta)] [st (sin theta)] [cp (cos phi)] [sp (sin phi)])
      (let loop : Float ([i : Integer 0] [acc : Float 0.0]
                         [x : Float 1.0] [y : Float 0.5] [z : Float -0.3])
        (if (= i atoms) (sqrt (/ acc (exact->inexact atoms)))
            (let ([nx (+ (- (* ct x) (* st y)) (* 0.1 cp))]
                  [ny (+ (+ (* st x) (* ct y)) (* 0.1 sp))]
                  [nz (+ (* cp z) (* 0.05 (- (* sp x) (* sp y))))])
              (loop (+ i 1)
                    (+ acc (+ (* (- nx x) (- nx x))
                              (+ (* (- ny y) (- ny y)) (* (- nz z) (- nz z)))))
                    nx ny nz)))))))
(define (search [n : Integer] [atoms : Integer]) : Float
  (let loop : Float ([i : Integer 0] [seed : Float 42.0] [best : Float 1e30])
    (if (= i n) best
        (let ([r (rms-after-transform seed atoms)])
          (loop (+ i 1) (next-seed seed) (min best r))))))
(define (main) : Float (floor (* 1000000.0 (search 2000 60))))
(display (main))
|}

(* ------------------------------------------------------------------ *)
(* Figure 9: large benchmarks                                          *)
(* ------------------------------------------------------------------ *)

let raytrace =
  b "raytrace" "fig9" "application"
    {|
(define (v3 x y z)
  (let ([v (make-vector 3 0.0)])
    (vector-set! v 0 x) (vector-set! v 1 y) (vector-set! v 2 z) v))
(define (dot a b)
  (+ (* (vector-ref a 0) (vector-ref b 0))
     (+ (* (vector-ref a 1) (vector-ref b 1))
        (* (vector-ref a 2) (vector-ref b 2)))))
(define (sub a b)
  (v3 (- (vector-ref a 0) (vector-ref b 0))
      (- (vector-ref a 1) (vector-ref b 1))
      (- (vector-ref a 2) (vector-ref b 2))))
(define (scale a k)
  (v3 (* (vector-ref a 0) k) (* (vector-ref a 1) k) (* (vector-ref a 2) k)))
(define (normalize a)
  (let ([n (sqrt (dot a a))]) (scale a (/ 1.0 n))))
(define (sphere-hit center radius origin dir)
  (let* ([oc (sub origin center)]
         [b (dot oc dir)]
         [c (- (dot oc oc) (* radius radius))]
         [disc (- (* b b) c)])
    (if (< disc 0.0) -1.0
        (let ([t (- 0.0 (+ b (sqrt disc)))])
          (if (> t 0.001) t -1.0)))))
(define (trace-pixel px py)
  (let ([origin (v3 0.0 0.0 -3.0)]
        [dir (normalize (v3 px py 1.0))]
        [light (normalize (v3 0.5 1.0 -0.5))])
    (let loop ([k 0] [best -1.0] [bestc (v3 0.0 0.0 0.0)] [bestr 0.0])
      (if (= k 3)
          (if (< best 0.0) 0.0
              (let* ([hit (scale dir best)]
                     [n (normalize (sub hit bestc))]
                     [d (dot n light)])
                (if (> d 0.0) d 0.0)))
          (let* ([cx (- (* 1.5 (exact->inexact k)) 1.5)]
                 [center (v3 cx 0.0 1.0)]
                 [t (sphere-hit center 0.7 origin dir)])
            (if (and (> t 0.0) (or (< best 0.0) (< t best)))
                (loop (+ k 1) t center 0.7)
                (loop (+ k 1) best bestc bestr)))))))
(define (main)
  (let yloop ([y 0] [acc 0.0])
    (if (= y 40) (floor (* 1000.0 acc))
        (yloop (+ y 1)
          (let xloop ([x 0] [a acc])
            (if (= x 40) a
                (xloop (+ x 1)
                  (+ a (trace-pixel (- (/ (exact->inexact x) 20.0) 1.0)
                                    (- (/ (exact->inexact y) 20.0) 1.0))))))))))
(display (main))
|}
    {|
(define (v3 [x : Float] [y : Float] [z : Float]) : (Vectorof Float)
  (let ([v (make-vector 3 0.0)])
    (vector-set! v 0 x) (vector-set! v 1 y) (vector-set! v 2 z) v))
(define (dot [a : (Vectorof Float)] [b : (Vectorof Float)]) : Float
  (+ (* (vector-ref a 0) (vector-ref b 0))
     (+ (* (vector-ref a 1) (vector-ref b 1))
        (* (vector-ref a 2) (vector-ref b 2)))))
(define (sub [a : (Vectorof Float)] [b : (Vectorof Float)]) : (Vectorof Float)
  (v3 (- (vector-ref a 0) (vector-ref b 0))
      (- (vector-ref a 1) (vector-ref b 1))
      (- (vector-ref a 2) (vector-ref b 2))))
(define (scale [a : (Vectorof Float)] [k : Float]) : (Vectorof Float)
  (v3 (* (vector-ref a 0) k) (* (vector-ref a 1) k) (* (vector-ref a 2) k)))
(define (normalize [a : (Vectorof Float)]) : (Vectorof Float)
  (let ([n (sqrt (dot a a))]) (scale a (/ 1.0 n))))
(define (sphere-hit [center : (Vectorof Float)] [radius : Float]
                    [origin : (Vectorof Float)] [dir : (Vectorof Float)]) : Float
  (let* ([oc (sub origin center)]
         [b (dot oc dir)]
         [c (- (dot oc oc) (* radius radius))]
         [disc (- (* b b) c)])
    (if (< disc 0.0) -1.0
        (let ([t (- 0.0 (+ b (sqrt disc)))])
          (if (> t 0.001) t -1.0)))))
(define (trace-pixel [px : Float] [py : Float]) : Float
  (let ([origin (v3 0.0 0.0 -3.0)]
        [dir (normalize (v3 px py 1.0))]
        [light (normalize (v3 0.5 1.0 -0.5))])
    (let loop : Float ([k : Integer 0] [best : Float -1.0]
                       [bestc : (Vectorof Float) (v3 0.0 0.0 0.0)] [bestr : Float 0.0])
      (if (= k 3)
          (if (< best 0.0) 0.0
              (let* ([hit (scale dir best)]
                     [n (normalize (sub hit bestc))]
                     [d (dot n light)])
                (if (> d 0.0) d 0.0)))
          (let* ([cx (- (* 1.5 (exact->inexact k)) 1.5)]
                 [center (v3 cx 0.0 1.0)]
                 [t (sphere-hit center 0.7 origin dir)])
            (if (and (> t 0.0) (or (< best 0.0) (< t best)))
                (loop (+ k 1) t center 0.7)
                (loop (+ k 1) best bestc bestr)))))))
(define (main) : Float
  (let yloop : Float ([y : Integer 0] [acc : Float 0.0])
    (if (= y 40) (floor (* 1000.0 acc))
        (yloop (+ y 1)
          (let xloop : Float ([x : Integer 0] [a : Float acc])
            (if (= x 40) a
                (xloop (+ x 1)
                  (+ a (trace-pixel (- (/ (exact->inexact x) 20.0) 1.0)
                                    (- (/ (exact->inexact y) 20.0) 1.0))))))))))
(display (main))
|}

let fft =
  b "fft" "fig9" "application"
    {|
(define (make-signal n)
  (let ([v (make-vector n 0.0+0.0i)])
    (let loop ([i 0])
      (when (< i n)
        (vector-set! v i (make-rectangular (sin (* 0.3 (exact->inexact i)))
                                           (cos (* 0.7 (exact->inexact i)))))
        (loop (+ i 1))))
    v))
(define (bit-reverse! v n)
  (let loop ([i 1] [j 0])
    (when (< i n)
      (let ([j (let adjust ([j j] [bit (quotient n 2)])
                 (if (>= j bit) (adjust (- j bit) (quotient bit 2)) (+ j bit)))])
        (when (< i j)
          (let ([tmp (vector-ref v i)])
            (vector-set! v i (vector-ref v j))
            (vector-set! v j tmp)))
        (loop (+ i 1) j)))))
(define (fft! v n)
  (bit-reverse! v n)
  (let lenloop ([len 2])
    (when (<= len n)
      (let ([ang (/ -6.283185307179586 (exact->inexact len))])
        (let ([wlen (make-polar 1.0 ang)])
          (let iloop ([i 0])
            (when (< i n)
              (let jloop ([j 0] [w 1.0+0.0i])
                (when (< j (quotient len 2))
                  (let* ([u (vector-ref v (+ i j))]
                         [t (* w (vector-ref v (+ i (+ j (quotient len 2)))))])
                    (vector-set! v (+ i j) (+ u t))
                    (vector-set! v (+ i (+ j (quotient len 2))) (- u t))
                    (jloop (+ j 1) (* w wlen)))))
              (iloop (+ i len))))))
      (lenloop (* len 2)))))
(define (main)
  (let* ([n 512]
         [v (make-signal n)])
    (let loop ([k 0])
      (when (< k 20) (fft! v n) (loop (+ k 1))))
    (floor (* 1000.0 (magnitude (vector-ref v 1))))))
(display (main))
|}
    {|
(define (make-signal [n : Integer]) : (Vectorof Float-Complex)
  (let ([v (make-vector n 0.0+0.0i)])
    (let loop : Void ([i : Integer 0])
      (when (< i n)
        (vector-set! v i (make-rectangular (sin (* 0.3 (exact->inexact i)))
                                           (cos (* 0.7 (exact->inexact i)))))
        (loop (+ i 1))))
    v))
(define (bit-reverse! [v : (Vectorof Float-Complex)] [n : Integer]) : Void
  (let loop : Void ([i : Integer 1] [j : Integer 0])
    (when (< i n)
      (let ([j (let adjust : Integer ([j : Integer j] [bit : Integer (quotient n 2)])
                 (if (>= j bit) (adjust (- j bit) (quotient bit 2)) (+ j bit)))])
        (when (< i j)
          (let ([tmp (vector-ref v i)])
            (vector-set! v i (vector-ref v j))
            (vector-set! v j tmp)))
        (loop (+ i 1) j)))))
(define (fft! [v : (Vectorof Float-Complex)] [n : Integer]) : Void
  (bit-reverse! v n)
  (let lenloop : Void ([len : Integer 2])
    (when (<= len n)
      (let ([ang (/ -6.283185307179586 (exact->inexact len))])
        (let ([wlen (make-polar 1.0 ang)])
          (let iloop : Void ([i : Integer 0])
            (when (< i n)
              (let jloop : Void ([j : Integer 0] [w : Float-Complex 1.0+0.0i])
                (when (< j (quotient len 2))
                  (let* ([u (vector-ref v (+ i j))]
                         [t (* w (vector-ref v (+ i (+ j (quotient len 2)))))])
                    (vector-set! v (+ i j) (+ u t))
                    (vector-set! v (+ i (+ j (quotient len 2))) (- u t))
                    (jloop (+ j 1) (* w wlen)))))
              (iloop (+ i len))))))
      (lenloop (* len 2)))))
(define (main) : Float
  (let* ([n 512]
         [v (make-signal n)])
    (let loop : Void ([k : Integer 0])
      (when (< k 20) (fft! v n) (loop (+ k 1))))
    (floor (* 1000.0 (magnitude (vector-ref v 1))))))
(display (main))
|}

let bankers_queue =
  b "bankers-queue" "fig9" "functional DS"
    {|
(define (queue-empty) (cons '() '()))
(define (queue-balance f b)
  (if (null? f) (cons (reverse b) '()) (cons f b)))
(define (queue-snoc q x)
  (queue-balance (car q) (cons x (cdr q))))
(define (queue-head q) (car (car q)))
(define (queue-tail q)
  (queue-balance (cdr (car q)) (cdr q)))
(define (queue-empty? q) (null? (car q)))
(define (main)
  (let loop ([round 0] [acc 0])
    (if (= round 200) acc
        (loop (+ round 1)
          (let fill ([i 0] [q (queue-empty)])
            (if (< i 120)
                (fill (+ i 1) (queue-snoc q i))
                (let drain ([q q] [sum acc])
                  (if (queue-empty? q) sum
                      (drain (queue-tail q) (+ sum (queue-head q)))))))))))
(display (main))
|}
    {|
(define (queue-empty) : (Pairof (Listof Integer) (Listof Integer))
  (cons '() '()))
(define (queue-balance [f : (Listof Integer)] [b : (Listof Integer)])
  : (Pairof (Listof Integer) (Listof Integer))
  (if (null? f) (cons (reverse b) '()) (cons f b)))
(define (queue-snoc [q : (Pairof (Listof Integer) (Listof Integer))] [x : Integer])
  : (Pairof (Listof Integer) (Listof Integer))
  (queue-balance (car q) (cons x (cdr q))))
(define (queue-head [q : (Pairof (Listof Integer) (Listof Integer))]) : Integer
  (car (car q)))
(define (queue-tail [q : (Pairof (Listof Integer) (Listof Integer))])
  : (Pairof (Listof Integer) (Listof Integer))
  (queue-balance (cdr (car q)) (cdr q)))
(define (queue-empty? [q : (Pairof (Listof Integer) (Listof Integer))]) : Boolean
  (null? (car q)))
(define (main) : Integer
  (let loop : Integer ([round : Integer 0] [acc : Integer 0])
    (if (= round 200) acc
        (loop (+ round 1)
          (let fill : Integer ([i : Integer 0]
                               [q : (Pairof (Listof Integer) (Listof Integer)) (queue-empty)])
            (if (< i 120)
                (fill (+ i 1) (queue-snoc q i))
                (let drain : Integer ([q : (Pairof (Listof Integer) (Listof Integer)) q]
                                      [sum : Integer acc])
                  (if (queue-empty? q) sum
                      (drain (queue-tail q) (+ sum (queue-head q)))))))))))
(display (main))
|}

let sortedset =
  b "sortedset" "fig9" "functional DS"
    {|
(define (set-insert s x)
  (cond [(null? s) (list x)]
        [(< x (car s)) (cons x s)]
        [(= x (car s)) s]
        [else (cons (car s) (set-insert (cdr s) x))]))
(define (set-member? s x)
  (cond [(null? s) #f]
        [(< x (car s)) #f]
        [(= x (car s)) #t]
        [else (set-member? (cdr s) x)]))
(define (set-union a b)
  (cond [(null? a) b]
        [(null? b) a]
        [(< (car a) (car b)) (cons (car a) (set-union (cdr a) b))]
        [(= (car a) (car b)) (cons (car a) (set-union (cdr a) (cdr b)))]
        [else (cons (car b) (set-union a (cdr b)))]))
(define (main)
  (let loop ([round 0] [acc 0])
    (if (= round 60) acc
        (let* ([a (let build ([i 0] [s '()])
                    (if (= i 60) s (build (+ i 1) (set-insert s (modulo (* i 7) 97)))))]
               [b (let build ([i 0] [s '()])
                    (if (= i 60) s (build (+ i 1) (set-insert s (modulo (* i 11) 97)))))]
               [u (set-union a b)])
          (loop (+ round 1)
                (+ acc (+ (length u) (if (set-member? u 42) 1 0))))))))
(display (main))
|}
    {|
(define (set-insert [s : (Listof Integer)] [x : Integer]) : (Listof Integer)
  (cond [(null? s) (list x)]
        [(< x (car s)) (cons x s)]
        [(= x (car s)) s]
        [else (cons (car s) (set-insert (cdr s) x))]))
(define (set-member? [s : (Listof Integer)] [x : Integer]) : Boolean
  (cond [(null? s) #f]
        [(< x (car s)) #f]
        [(= x (car s)) #t]
        [else (set-member? (cdr s) x)]))
(define (set-union [a : (Listof Integer)] [b : (Listof Integer)]) : (Listof Integer)
  (cond [(null? a) b]
        [(null? b) a]
        [(< (car a) (car b)) (cons (car a) (set-union (cdr a) b))]
        [(= (car a) (car b)) (cons (car a) (set-union (cdr a) (cdr b)))]
        [else (cons (car b) (set-union a (cdr b)))]))
(define (main) : Integer
  (let loop : Integer ([round : Integer 0] [acc : Integer 0])
    (if (= round 60) acc
        (let* ([a (let build : (Listof Integer) ([i : Integer 0] [s : (Listof Integer) '()])
                    (if (= i 60) s (build (+ i 1) (set-insert s (modulo (* i 7) 97)))))]
               [b (let build : (Listof Integer) ([i : Integer 0] [s : (Listof Integer) '()])
                    (if (= i 60) s (build (+ i 1) (set-insert s (modulo (* i 11) 97)))))]
               [u (set-union a b)])
          (loop (+ round 1)
                (+ acc (+ (length u) (if (set-member? u 42) 1 0))))))))
(display (main))
|}

(* ------------------------------------------------------------------ *)
(* Expansion stress family (the hygiene-at-speed series)               *)
(* ------------------------------------------------------------------ *)

(* Macro-heavy programs that stress the expansion front end rather than
   the evaluator: a doubling [syntax-rules] tower (every use of [tN]
   expands to two uses of [tN-1], so one call site explodes into 2^N
   transformer applications) over a [nest] macro that winds [nvars]
   [let]-bindings around the body one macro step at a time.  The nest is
   the adversarial part for sets-of-scopes hygiene: each step re-wraps
   the whole remaining body, every binder adds a scope, and the innermost
   references carry scope sets of size O(nvars) — the naive
   copy-per-scope-op implementation degrades quadratically here, which is
   exactly what the lazy-propagation series is meant to expose (see
   docs/architecture.md, "hygiene internals").

   Each program prints [copies * (2^depth + nvars)] so the harness can
   verify the expansion was not mangled (the checksum gate). *)

let stress_body ~depth ~nvars ~copies : string =
  let buf = Buffer.create 4096 in
  let add fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  add "(define-syntax-rule (inc x) (+ x 1))";
  add "(define-syntax-rule (t0 x) (inc x))";
  for i = 1 to depth do
    add "(define-syntax-rule (t%d x) (t%d (t%d x)))" i (i - 1) (i - 1)
  done;
  add "(define-syntax nest";
  add "  (syntax-rules ()";
  add "    [(_ () body) body]";
  add "    [(_ (v vs ...) body) (let ([v 1]) (nest (vs ...) body))]))";
  let vars = String.concat " " (List.init nvars (Printf.sprintf "v%d")) in
  for c = 0 to copies - 1 do
    add "(define (go%d) (nest (%s) (+ (t%d 0) %s)))" c vars depth vars
  done;
  let calls = String.concat " " (List.init copies (Printf.sprintf "(go%d)")) in
  add "(display (+ %s))" calls;
  Buffer.contents buf

(* The expansion series is untyped-only: the [typed] field holds the same
   body, but the harness only expands the untyped variant. *)
let stress name ~depth ~nvars ~copies =
  let body = stress_body ~depth ~nvars ~copies in
  let p = b name "expand" "hygiene" body body in
  let expected = copies * ((1 lsl depth) + nvars) in
  (p, string_of_int expected)

let stress_small = stress "stx-small" ~depth:4 ~nvars:96 ~copies:2
let stress_mid = stress "stx-mid" ~depth:5 ~nvars:128 ~copies:2
let stress_big = stress "stx-big" ~depth:6 ~nvars:192 ~copies:3

(** The macro-heavy stress family with each program's expected printed
    checksum (what [display] must produce if expansion is correct). *)
let expand_family : (t * string) list = [ stress_small; stress_mid; stress_big ]

let all : t list =
  [
    tak; cpstak; takl; deriv; divrec; nqueens; sum; sumfp; fib; fibfp; ack; mbrot; heapsort;
    array1;
    nbody; spectralnorm; mandelbrot; binarytrees; fannkuch;
    pseudoknot;
    raytrace; fft; bankers_queue; sortedset;
  ]
  @ List.map fst expand_family

let by_figure fig = List.filter (fun b -> String.equal b.figure fig) all
let find name = List.find (fun b -> String.equal b.name name) all
