(** Quickstart: the platform in five minutes.

    Shows the basic pipeline (read → expand → run), a user-defined macro,
    hygiene in action, and the paper's §2.2 [local-expand] example
    ([only-lambda]: a macro that insists its argument is a lambda
    expression, seeing through any macros in between).

    Run with: dune exec examples/quickstart.exe *)

open Liblang_core.Core

let section title =
  Printf.printf "\n=== %s ===\n" title

let () =
  init ();

  section "1. Run a #lang racket program";
  let out =
    run_string
      {|#lang racket
(define (greet name) (string-append "Hello, " name "!"))
(displayln (greet "world"))
(displayln (map (lambda (x) (* x x)) '(1 2 3 4 5)))
|}
  in
  print_string out;

  section "2. Evaluate expressions directly";
  List.iter
    (fun e -> Printf.printf "%-40s => %s\n" e (Value.write_string (eval_expr e)))
    [
      "(+ 1 2 3)";
      "(let loop ([i 0] [acc '()]) (if (= i 5) acc (loop (+ i 1) (cons i acc))))";
      "`(1 ,(+ 1 1) ,@(list 3 4))";
    ];

  section "3. Define and use a macro (with hygiene)";
  let out =
    run_string
      {|#lang racket
;; swap! expands to code using a temporary -- hygiene keeps the user's
;; own `tmp` from being captured
(define-syntax-rule (swap! a b) (let ([tmp a]) (set! a b) (set! b tmp)))
(define tmp 1)
(define other 2)
(swap! tmp other)
(printf "tmp=~a other=~a~%" tmp other)
|}
  in
  print_string out;

  section "4. See the core forms that local-expand produces (paper fig. 1)";
  Printf.printf "source:   (when (> 2 1) (displayln \"yes\"))\n";
  Printf.printf "expanded: %s\n" (expand_expr_string {|(when (> 2 1) (displayln "yes"))|});

  section "5. The paper's only-lambda example (§2.2)";
  (* A language construct that requires its argument to be a lambda
     expression — even when the lambda is hidden behind a macro.  This is
     the paper's [only-.] example, written against the host-language API. *)
  let only_lambda (form : Stx.t) : Stx.t =
    match Stx.to_list form with
    | Some [ _; arg ] -> (
        let expanded = Expander.local_expand arg Expander.Expression in
        match Stx.view expanded with
        | Stx.List (head :: _)
          when Stx.is_id head
               && Binding.free_identifier_eq head (Expander.core_id "#%plain-lambda") ->
            expanded
        | _ -> raise (Expander.Expand_error ("not a lambda expression", arg)))
    | _ -> raise (Expander.Expand_error ("only-lambda: bad syntax", form))
  in
  (* register it as a new builtin language extending racket *)
  let _m, _ctx =
    Modsys.declare_builtin ~name:"racket-with-only-lambda"
      ~reexports:
        (List.map
           (fun (e : Modsys.export) -> (e.Modsys.ext_name, e.Modsys.binding))
           (Modsys.find "racket").Modsys.exports)
      ~macros:[ ("only-lambda", Denote.Native ("only-lambda", only_lambda)) ]
      ()
  in
  let try_program what src =
    match run_string src with
    | out -> Printf.printf "%-26s accepted; output: %s\n" what (String.trim out)
    | exception Expander.Expand_error (m, _) -> Printf.printf "%-26s rejected: %s\n" what m
  in
  try_program "(only-lambda (lambda…))"
    "#lang racket-with-only-lambda\n(display ((only-lambda (lambda (x) x)) 42))";
  (* function is a macro for lambda; only-lambda sees through it because it
     uses local-expand *)
  try_program "(only-lambda (function…))"
    "#lang racket-with-only-lambda\n(define-syntax-rule (function args body) (lambda args body))\n(display ((only-lambda (function (x) (* 2 x))) 21))";
  try_program "(only-lambda 7)" "#lang racket-with-only-lambda\n(only-lambda 7)";

  print_newline ()
