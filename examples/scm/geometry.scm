#lang racket
;; Untyped library module: plain definitions with a provide list.
;; Required by main.scm as (require "geometry.scm").
(provide square perimeter)

(define (square x) (* x x))

(define (perimeter w h) (* 2 (+ w h)))
