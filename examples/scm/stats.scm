#lang typed/racket
;; Typed library module (paper §5-§6): its exports carry their types into
;; requiring typed compilations, and cross to untyped clients behind
;; contracts.  Required by main.scm as (require "stats.scm").
(provide mean sum-list)

(: sum-list ((Listof Integer) -> Integer))
(define (sum-list xs)
  (if (null? xs) 0 (+ (car xs) (sum-list (cdr xs)))))

(: mean ((Listof Integer) -> Integer))
(define (mean xs)
  (quotient (sum-list xs) (length xs)))
