#lang racket
;; Entry point of the multi-module example: requires one untyped and one
;; typed file module by relative path.  Compile it separately with
;;
;;   liblang compile examples/scm/main.scm      (cold: compiles 3 modules)
;;   liblang compile examples/scm/main.scm      (warm: 3 cache hits)
;;   liblang run --cache examples/scm/main.scm  (runs from the artifacts)
;;
;; See docs/compilation.md for what the artifacts contain.
(require "geometry.scm")
(require "stats.scm")

(display (square 7))
(newline)
(display (perimeter 3 4))
(newline)
(display (mean (list 2 4 6 8)))
(newline)
